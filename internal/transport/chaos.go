package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rasc.dev/rasc/internal/clock"
)

// ErrInjected is the error a non-silent Chaos wrapper returns for a
// message it dropped or partitioned away. Layers above (Resilient) treat
// it like any other send failure: retry, then trip the breaker.
var ErrInjected = errors.New("transport: chaos-injected fault")

// reorderHold is how long a message selected for reordering is held
// before it is flushed anyway (when no follow-up message overtakes it).
const reorderHold = 50 * time.Millisecond

// ChaosConfig parameterizes fault injection. Probabilities are clamped to
// [0, 1]; the zero value injects nothing.
type ChaosConfig struct {
	// Seed makes every fault decision reproducible; 0 seeds from the
	// wall clock.
	Seed int64
	// Drop is the probability a message is dropped outright.
	Drop float64
	// Delay and DelayJitter hold every delivered message for
	// Delay + uniform[0, DelayJitter) before it reaches the wire.
	Delay, DelayJitter time.Duration
	// Duplicate is the probability a message is sent twice.
	Duplicate float64
	// Reorder is the probability a message is held back and overtaken by
	// the next message to the same destination (flushed after 50ms when
	// nothing overtakes it).
	Reorder float64
	// SilentDrop makes drops and partitions report success, as real
	// packet loss would, instead of returning ErrInjected. Leave false
	// for retry/breaker testing: the caller sees the failure.
	SilentDrop bool
}

func (c *ChaosConfig) clamp() {
	clamp01 := func(p *float64) {
		if *p < 0 {
			*p = 0
		}
		if *p > 1 {
			*p = 1
		}
	}
	clamp01(&c.Drop)
	clamp01(&c.Duplicate)
	clamp01(&c.Reorder)
}

// Active reports whether the configuration injects any fault at all.
func (c ChaosConfig) Active() bool {
	return c.Drop > 0 || c.Delay > 0 || c.DelayJitter > 0 || c.Duplicate > 0 || c.Reorder > 0
}

// Chaos wraps an Endpoint and injects faults into its outbound path:
// probabilistic drops, fixed-plus-jitter delays, duplicates, pairwise
// reordering, and on-demand partitions by destination. Inbound traffic is
// untouched — wrap both ends to disturb both directions. All decisions
// come from a seedable source, so a seeded wrapper injects the same fault
// sequence every run (timer interleaving aside). Delays and reorder
// flushes are scheduled on the provided clock, so under the simulator
// they consume virtual time.
type Chaos struct {
	inner Endpoint
	clk   clock.Clock
	cfg   ChaosConfig

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned map[Addr]bool
	held        map[Addr]Message
	closed      bool
}

var _ Endpoint = (*Chaos)(nil)

// NewChaos wraps inner with fault injection. A nil clk uses the wall
// clock.
func NewChaos(inner Endpoint, cfg ChaosConfig, clk clock.Clock) *Chaos {
	cfg.clamp()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Chaos{
		inner:       inner,
		clk:         clk,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(seed)),
		partitioned: make(map[Addr]bool),
		held:        make(map[Addr]Message),
	}
}

// Addr returns the inner endpoint's address.
func (c *Chaos) Addr() Addr { return c.inner.Addr() }

// SetHandler passes through to the inner endpoint.
func (c *Chaos) SetHandler(h Handler) { c.inner.SetHandler(h) }

// SetDropHandler passes through to the inner endpoint.
func (c *Chaos) SetDropHandler(h Handler) { c.inner.SetDropHandler(h) }

// Close closes the inner endpoint; held and delayed messages are
// abandoned.
func (c *Chaos) Close() error {
	c.mu.Lock()
	c.closed = true
	c.held = make(map[Addr]Message)
	c.mu.Unlock()
	return c.inner.Close()
}

// Partition cuts the outbound path to the given destinations: every send
// to them faults until Heal.
func (c *Chaos) Partition(addrs ...Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range addrs {
		c.partitioned[a] = true
	}
}

// Heal restores the outbound path to the given destinations.
func (c *Chaos) Heal(addrs ...Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range addrs {
		delete(c.partitioned, a)
	}
}

// HealAll clears every partition.
func (c *Chaos) HealAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partitioned = make(map[Addr]bool)
}

// Send applies the configured faults and forwards whatever survives to
// the inner endpoint.
func (c *Chaos) Send(to Addr, msg Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.partitioned[to] {
		c.mu.Unlock()
		telChaosInjected.With("partition").Inc()
		return c.dropResult(to, "partitioned")
	}
	if c.cfg.Drop > 0 && c.rng.Float64() < c.cfg.Drop {
		c.mu.Unlock()
		telChaosInjected.With("drop").Inc()
		return c.dropResult(to, "dropped")
	}
	duplicate := c.cfg.Duplicate > 0 && c.rng.Float64() < c.cfg.Duplicate
	delay := c.delayLocked()
	if prev, ok := c.held[to]; ok {
		// A message is waiting to be overtaken: deliver the current one
		// first and the held one just behind it, so their wire order
		// swaps even when a configured Delay postpones both.
		delete(c.held, to)
		c.mu.Unlock()
		heldDelay := time.Duration(0)
		if delay > 0 {
			heldDelay = delay + time.Millisecond
		}
		err := c.deliver(to, msg, delay, duplicate)
		c.deliver(to, prev, heldDelay, false)
		return err
	}
	if c.cfg.Reorder > 0 && c.rng.Float64() < c.cfg.Reorder {
		c.held[to] = msg
		c.mu.Unlock()
		telChaosInjected.With("reorder").Inc()
		c.clk.After(reorderHold, func() { c.flushHeld(to) })
		return nil
	}
	c.mu.Unlock()
	return c.deliver(to, msg, delay, duplicate)
}

// dropResult reports a dropped message according to SilentDrop.
func (c *Chaos) dropResult(to Addr, why string) error {
	if c.cfg.SilentDrop {
		return nil
	}
	return fmt.Errorf("%w: %s to %s", ErrInjected, why, to)
}

// delayLocked draws this message's injected delay; caller holds c.mu.
func (c *Chaos) delayLocked() time.Duration {
	d := c.cfg.Delay
	if c.cfg.DelayJitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.cfg.DelayJitter)))
	}
	return d
}

// deliver forwards msg (and a duplicate when asked) after the injected
// delay. Delayed sends report success immediately; their eventual failure
// is indistinguishable from loss, exactly like a real network.
func (c *Chaos) deliver(to Addr, msg Message, delay time.Duration, duplicate bool) error {
	if duplicate {
		telChaosInjected.With("duplicate").Inc()
	}
	if delay > 0 {
		telChaosInjected.With("delay").Inc()
		c.clk.After(delay, func() {
			c.inner.Send(to, msg)
			if duplicate {
				c.inner.Send(to, msg)
			}
		})
		return nil
	}
	err := c.inner.Send(to, msg)
	if duplicate {
		c.inner.Send(to, msg)
	}
	return err
}

// flushHeld sends a reorder-held message that nothing overtook.
func (c *Chaos) flushHeld(to Addr) {
	c.mu.Lock()
	msg, ok := c.held[to]
	if ok {
		delete(c.held, to)
	}
	closed := c.closed
	c.mu.Unlock()
	if ok && !closed {
		c.deliver(to, msg, 0, false)
	}
}
