package rasc

import (
	"context"
	"errors"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
)

// TestNewFunctionalOptions checks that New applies options and that the
// functional path builds the exact deployment the deprecated Options shim
// builds: same seed, same placement, same delivery statistics.
func TestNewFunctionalOptions(t *testing.T) {
	sys := New(WithNodes(12), WithSeed(9), WithServicesPerNode(4), WithSchedPolicy("edf"))
	if sys.Nodes() != 12 {
		t.Fatalf("Nodes = %d, want 12", sys.Nodes())
	}
	for i := 0; i < sys.Nodes(); i++ {
		if len(sys.ServicesAt(i)) != 4 {
			t.Fatalf("node %d offers %d services, want 4", i, len(sys.ServicesAt(i)))
		}
	}

	run := func(sys *System) DeliveryStats {
		req := Request{
			ID:         "equiv",
			UnitBytes:  1250,
			Substreams: []Substream{{Services: []string{"filter"}, Rate: 6}},
		}
		comp, err := sys.Submit(1, req, ComposerMinCost)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(5 * time.Second)
		return comp.Stats()
	}
	a := run(New(WithNodes(12), WithSeed(77)))
	b := run(NewSimulated(Options{Nodes: 12, Seed: 77}))
	if a != b {
		t.Fatalf("New and NewSimulated diverged on the same seed:\n%+v\n%+v", a, b)
	}
}

func TestParseComposerRoundTrip(t *testing.T) {
	for _, c := range Composers() {
		got, err := ParseComposer(c.String())
		if err != nil {
			t.Fatalf("ParseComposer(%q): %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip %q -> %q", c, got)
		}
	}
	if _, err := ParseComposer("nonsense"); !errors.Is(err, ErrUnknownComposer) {
		t.Fatalf("err = %v, want ErrUnknownComposer", err)
	}
}

// TestSubmitSentinelErrors checks that each failure mode surfaces its
// sentinel through errors.Is, and that wrapping preserves the underlying
// solver error chain.
func TestSubmitSentinelErrors(t *testing.T) {
	sys := New(WithNodes(8), WithSeed(4))
	req := Request{
		ID:         "r",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter"}, Rate: 5}},
	}
	if _, err := sys.Submit(0, req, Composer("nonsense")); !errors.Is(err, ErrUnknownComposer) {
		t.Fatalf("err = %v, want ErrUnknownComposer", err)
	}
	bad := req
	bad.Substreams = []Substream{{Services: []string{"no-such-service"}, Rate: 5}}
	if _, err := sys.Submit(0, bad, ComposerMinCost); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v, want ErrUnknownService", err)
	}
	huge := req
	huge.Substreams = []Substream{{Services: []string{"filter"}, Rate: 100000}}
	_, err := sys.Submit(0, huge, ComposerMinCost)
	if !errors.Is(err, ErrNoComposition) {
		t.Fatalf("err = %v, want ErrNoComposition", err)
	}
	if !errors.Is(err, core.ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v lost the underlying ErrNoFeasiblePlacement chain", err)
	}
}

func TestSubmitContextCanceled(t *testing.T) {
	sys := New(WithNodes(8), WithSeed(4))
	req := Request{
		ID:         "ctx",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter"}, Rate: 5}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.SubmitContext(ctx, 0, req, ComposerMinCost); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// An unconstrained context behaves exactly like Submit.
	if _, err := sys.SubmitContext(context.Background(), 0, req, ComposerMinCost); err != nil {
		t.Fatal(err)
	}
}

// TestWithChaos checks that a chaotic deployment still composes and
// streams, stays deterministic under the same seed, and that the
// partition helpers require WithChaos.
func TestWithChaos(t *testing.T) {
	run := func() DeliveryStats {
		sys := New(WithNodes(10), WithSeed(6), WithChaos(ChaosConfig{Drop: 0.02, SilentDrop: true}))
		req := Request{
			ID:         "chaotic",
			UnitBytes:  1250,
			Substreams: []Substream{{Services: []string{"filter"}, Rate: 5}},
		}
		comp, err := sys.Submit(0, req, ComposerMinCost)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(5 * time.Second)
		return comp.Stats()
	}
	a := run()
	if a.Received == 0 {
		t.Fatal("nothing delivered through 2% chaos drop")
	}
	if b := run(); a != b {
		t.Fatalf("chaotic deployment diverged on the same seed:\n%+v\n%+v", a, b)
	}

	sys := New(WithNodes(4), WithSeed(1), WithChaos(ChaosConfig{}))
	sys.Partition(0, 1)
	sys.Heal(0, 1)
	sys.Partition(0, 2)
	sys.HealAll()

	plain := New(WithNodes(4), WithSeed(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Partition without WithChaos did not panic")
		}
	}()
	plain.Partition(0, 1)
}
