package trace

import (
	"strings"
	"testing"
	"time"
)

func ev(at time.Duration, kind Kind, stage int, seq int64) Event {
	return Event{At: at, Kind: kind, Node: "n", Req: "r", Substream: 0, Stage: stage, Seq: seq}
}

func TestBufferRingEviction(t *testing.T) {
	b := NewBuffer(3)
	for i := int64(0); i < 5; i++ {
		b.Append(ev(time.Duration(i), KindEmit, -1, i))
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Total() != 5 {
		t.Fatalf("Total = %d", b.Total())
	}
	events := b.Events()
	if events[0].Seq != 2 || events[2].Seq != 4 {
		t.Fatalf("events = %+v", events)
	}
}

func TestTimeline(t *testing.T) {
	b := NewBuffer(64)
	b.Append(ev(10, KindEmit, -1, 7))
	b.Append(ev(15, KindArrive, 0, 7))
	b.Append(ev(16, KindProcess, 0, 7))
	b.Append(ev(16, KindForward, 0, 7))
	b.Append(ev(25, KindDeliver, 1, 7))
	b.Append(ev(11, KindEmit, -1, 8)) // other unit: excluded
	tl := b.Timeline("r", 0, 7)
	if len(tl) != 5 {
		t.Fatalf("timeline has %d events", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].At < tl[i-1].At {
			t.Fatal("timeline out of order")
		}
	}
	text := FormatTimeline(tl)
	for _, want := range []string{"emit", "arrive", "process", "forward", "deliver"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted timeline missing %q:\n%s", want, text)
		}
	}
}

func TestStageLatencies(t *testing.T) {
	b := NewBuffer(64)
	// Two units: emit at t, arrive stage 0 at t+10ms, forward at t+12ms,
	// deliver stage 1 at t+30ms.
	for seq := int64(0); seq < 2; seq++ {
		base := time.Duration(seq) * time.Second
		b.Append(ev(base, KindEmit, -1, seq))
		b.Append(ev(base+10*time.Millisecond, KindArrive, 0, seq))
		b.Append(ev(base+12*time.Millisecond, KindForward, 0, seq))
		b.Append(ev(base+30*time.Millisecond, KindDeliver, 1, seq))
	}
	lat := b.StageLatencies("r", 0)
	if len(lat) != 2 {
		t.Fatalf("stages = %+v", lat)
	}
	if lat[0].Stage != 0 || lat[0].Mean != 10*time.Millisecond || lat[0].Count != 2 {
		t.Fatalf("stage 0 = %+v", lat[0])
	}
	if lat[1].Stage != 1 || lat[1].Mean != 18*time.Millisecond {
		t.Fatalf("stage 1 = %+v", lat[1])
	}
}

func TestDropsByCause(t *testing.T) {
	b := NewBuffer(16)
	b.Append(Event{Kind: KindDrop, Note: "uplink"})
	b.Append(Event{Kind: KindDrop, Note: "uplink"})
	b.Append(Event{Kind: KindDrop, Note: "laxity"})
	b.Append(Event{Kind: KindDeliver})
	got := b.DropsByCause()
	if got["uplink"] != 2 || got["laxity"] != 1 || len(got) != 2 {
		t.Fatalf("DropsByCause = %v", got)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindEmit: "emit", KindArrive: "arrive", KindProcess: "process",
		KindForward: "forward", KindDrop: "drop", KindDeliver: "deliver",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}

func TestTinyBufferClamp(t *testing.T) {
	b := NewBuffer(0)
	b.Append(Event{Kind: KindEmit})
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}
