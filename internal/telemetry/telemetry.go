// Package telemetry is the node's runtime metrics registry: dependency-free
// always-on counters, gauges and fixed-bucket histograms built on
// sync/atomic, grouped into labelled families and exported in the
// Prometheus text exposition format (expose.go).
//
// It is distinct from internal/metrics, which aggregates offline experiment
// results; telemetry instruments live hot paths, so every write is a single
// atomic operation with no locks and no allocations. Instrumentation sites
// resolve their metric handles once (at package init or construction) and
// hold on to them; With/WithLabelValues takes a lock and must stay off hot
// paths.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use. All methods are safe for concurrent use; Add and Inc are a
// single atomic add.
type Counter struct {
	v atomic.Uint64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 metric, for
// accumulating fractional quantities an integer Counter cannot hold —
// seconds of accrued time, transferred megabytes. The zero value reads 0.
// All methods are safe for concurrent use.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add increments the counter by v; negative increments are ignored (a
// counter is monotonic by contract).
func (c *FloatCounter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// AddDuration increments the counter by d in seconds.
func (c *FloatCounter) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 metric that can go up and down. The zero value reads
// 0. All methods are safe for concurrent use and lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram safe for concurrent writers.
// Observations count into the first bucket whose upper bound is >= the
// value; values above every bound count into the implicit +Inf bucket.
// Create one through a Registry so the bounds are validated and the
// histogram is exported.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	for i := 1; i < len(bs); i++ {
		if bs[i] == bs[i-1] {
			panic(fmt.Sprintf("telemetry: duplicate histogram bound %g", bs[i]))
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Branchless-ish linear scan: bucket counts are small (tens), and a
	// linear scan beats binary search at these sizes while staying
	// allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts (aligned with bounds, then
// +Inf), the total count and the sum. Buckets are read without a global
// lock, so concurrent writers may skew the snapshot by in-flight
// observations — the tolerance Prometheus scrapes accept.
func (h *Histogram) snapshot() (cum []uint64, total uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run, h.Sum()
}

// DefBuckets are general-purpose latency buckets in seconds.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LinearBuckets returns n bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds starting at start, each factor times the
// previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic("telemetry: ExpBuckets needs start > 0 and factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// kind discriminates metric families.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	// kindFloatCounter is a counter with a float64 value; it renders as
	// "counter" but is a distinct kind so integer and float registrations
	// of the same name conflict loudly.
	kindFloatCounter
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindFloatCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labelled series of a family.
type child struct {
	labelValues  []string
	counter      *Counter
	floatCounter *FloatCounter
	gauge        *Gauge
	gaugeFn      func() float64
	histogram    *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	bounds     []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	order    []string // insertion order of children keys
}

func (f *family) child(labelValues []string) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := labelKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	vals := make([]string, len(labelValues))
	copy(vals, labelValues)
	c := &child{labelValues: vals}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindFloatCounter:
		c.floatCounter = &FloatCounter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.histogram = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

func labelKey(vals []string) string {
	if len(vals) == 0 {
		return ""
	}
	key := vals[0]
	for _, v := range vals[1:] {
		key += "\x00" + v
	}
	return key
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns (creating on first use) the counter for the label values.
// It takes a lock: call once and cache the handle, not per operation.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.child(labelValues).counter }

// FloatCounterVec is a float counter family with labels.
type FloatCounterVec struct{ f *family }

// With returns (creating on first use) the float counter for the label
// values. It takes a lock: call once and cache the handle off hot paths.
func (v *FloatCounterVec) With(labelValues ...string) *FloatCounter {
	return v.f.child(labelValues).floatCounter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns (creating on first use) the gauge for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.child(labelValues).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns (creating on first use) the histogram for the label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).histogram
}

// Registry holds metric families and renders them for exposition.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	families []*family // sorted insertion handled at exposition
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// std is the process-wide default registry instrumented packages hang
// their metrics off.
var std = NewRegistry()

// Default returns the process-wide registry served by the admin endpoint.
func Default() *Registry { return std }

// family registers (or returns the existing) family. Re-registering with a
// different kind or label schema panics: two packages disagreeing about a
// metric name is a programming error worth failing loudly on.
func (r *Registry) family(name, help string, k kind, labelNames []string, bounds []float64) *family {
	if !validName(name) {
		panic("telemetry: invalid metric name " + name)
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic("telemetry: invalid label name " + l + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || len(f.labelNames) != len(labelNames) {
			panic("telemetry: conflicting registration of " + name)
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic("telemetry: conflicting labels on " + name)
			}
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       k,
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]float64(nil), bounds...),
		children:   make(map[string]*child),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child(nil).counter
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labelNames, nil)}
}

// FloatCounter registers (or fetches) an unlabelled float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	return r.family(name, help, kindFloatCounter, nil, nil).child(nil).floatCounter
}

// FloatCounterVec registers (or fetches) a labelled float counter family.
func (r *Registry) FloatCounterVec(name, help string, labelNames ...string) *FloatCounterVec {
	return &FloatCounterVec{r.family(name, help, kindFloatCounter, labelNames, nil)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child(nil).gauge
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labelNames, nil)}
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time. fn must be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, nil, nil)
	c := f.child(nil)
	f.mu.Lock()
	c.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram registers (or fetches) an unlabelled histogram with the given
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.family(name, help, kindHistogram, nil, bounds).child(nil).histogram
}

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{r.family(name, help, kindHistogram, labelNames, bounds)}
}
