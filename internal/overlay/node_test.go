package overlay

import (
	"fmt"
	"testing"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/transport"
)

// cluster builds n overlay nodes on a simulated network and joins them
// sequentially through node 0.
type cluster struct {
	sim   *netsim.Simulator
	nodes []*Node
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	sim := netsim.New(seed)
	nw := netsim.NewNetwork(sim, netsim.Config{
		Latency: func(a, b netsim.NodeID) time.Duration { return 10 * time.Millisecond },
	})
	mem := transport.NewMemNetwork(nw)
	clk := clock.Sim{S: sim}
	c := &cluster{sim: sim}
	for i := 0; i < n; i++ {
		id := HashID(fmt.Sprintf("node-%d", i))
		ep := mem.Endpoint(nw.AddNode(1e8, 1e8))
		c.nodes = append(c.nodes, NewNode(id, ep, clk))
	}
	c.nodes[0].Bootstrap()
	for i := 1; i < n; i++ {
		c.nodes[i].Join(c.nodes[0].Addr(), nil)
		sim.Run() // quiesce between joins for determinism
	}
	for _, nd := range c.nodes {
		nd.Stabilize()
	}
	sim.Run()
	for i, nd := range c.nodes {
		if !nd.Joined() {
			t.Fatalf("node %d failed to join", i)
		}
	}
	return c
}

// root returns the cluster node whose ID is closest to key.
func (c *cluster) root(key ID) *Node {
	best := c.nodes[0]
	for _, nd := range c.nodes[1:] {
		if Closer(key, nd.ID(), best.ID()) {
			best = nd
		}
	}
	return best
}

func TestJoinBuildsState(t *testing.T) {
	c := newCluster(t, 16, 1)
	for i, nd := range c.nodes {
		if nd.NumKnown() < 8 {
			t.Fatalf("node %d knows only %d peers", i, nd.NumKnown())
		}
		if nd.leaf.size() == 0 {
			t.Fatalf("node %d has empty leaf set", i)
		}
	}
}

func TestRouteReachesRoot(t *testing.T) {
	c := newCluster(t, 24, 2)
	for trial := 0; trial < 60; trial++ {
		key := HashID(fmt.Sprintf("key-%d", trial))
		want := c.root(key)
		var deliveredAt *Node
		for _, nd := range c.nodes {
			nd := nd
			nd.Register("test", func(k ID, src NodeInfo, body []byte) {
				if k == key {
					deliveredAt = nd
				}
			})
		}
		src := c.nodes[trial%len(c.nodes)]
		src.Route(key, "test", []byte("payload"))
		c.sim.Run()
		if deliveredAt == nil {
			t.Fatalf("key %v never delivered", key)
		}
		if deliveredAt != want {
			t.Fatalf("key %v delivered at %v, want root %v", key, deliveredAt.ID(), want.ID())
		}
	}
}

func TestRouteFromRootDeliversLocally(t *testing.T) {
	c := newCluster(t, 8, 3)
	key := HashID("local-key")
	root := c.root(key)
	got := false
	root.Register("test", func(k ID, src NodeInfo, body []byte) { got = true })
	root.Route(key, "test", nil)
	c.sim.Run()
	if !got {
		t.Fatal("root did not deliver its own key locally")
	}
}

func TestRouteHopCountLogarithmic(t *testing.T) {
	c := newCluster(t, 32, 4)
	var totalForwarded int64
	for _, nd := range c.nodes {
		nd.Register("test", func(ID, NodeInfo, []byte) {})
		nd.Forwarded = 0
	}
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		key := HashID(fmt.Sprintf("hops-%d", trial))
		c.nodes[trial%len(c.nodes)].Route(key, "test", nil)
	}
	c.sim.Run()
	for _, nd := range c.nodes {
		totalForwarded += nd.Forwarded
	}
	avg := float64(totalForwarded) / trials
	// For N=32, b=4: expected ~log_16(32) ≈ 1.25 hops; allow generous slack.
	if avg > 4 {
		t.Fatalf("average hop count %.2f too high for 32 nodes", avg)
	}
}

func TestRequestResponse(t *testing.T) {
	c := newCluster(t, 4, 5)
	server := c.nodes[2]
	server.RegisterRequest("echo", func(from NodeInfo, body []byte, respond func([]byte, string)) {
		respond(append([]byte("echo:"), body...), "")
	})
	var got []byte
	var gotErr error
	c.nodes[0].Request(server.Addr(), "echo", []byte("hi"), time.Second, func(body []byte, err error) {
		got, gotErr = body, err
	})
	c.sim.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if string(got) != "echo:hi" {
		t.Fatalf("response = %q", got)
	}
}

func TestRequestErrorPropagates(t *testing.T) {
	c := newCluster(t, 3, 6)
	server := c.nodes[1]
	server.RegisterRequest("fail", func(from NodeInfo, body []byte, respond func([]byte, string)) {
		respond(nil, "boom")
	})
	var gotErr error
	c.nodes[0].Request(server.Addr(), "fail", nil, time.Second, func(body []byte, err error) { gotErr = err })
	c.sim.Run()
	if gotErr == nil || gotErr.Error() != "boom" {
		t.Fatalf("err = %v, want boom", gotErr)
	}
}

func TestRequestUnknownAppErrors(t *testing.T) {
	c := newCluster(t, 3, 7)
	var gotErr error
	c.nodes[0].Request(c.nodes[1].Addr(), "nonexistent", nil, time.Second, func(body []byte, err error) { gotErr = err })
	c.sim.Run()
	if gotErr == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestRequestTimeout(t *testing.T) {
	c := newCluster(t, 3, 8)
	// A handler that never responds.
	c.nodes[1].RegisterRequest("black-hole", func(NodeInfo, []byte, func([]byte, string)) {})
	var gotErr error
	calls := 0
	c.nodes[0].Request(c.nodes[1].Addr(), "black-hole", nil, 100*time.Millisecond, func(body []byte, err error) {
		calls++
		gotErr = err
	})
	c.sim.Run()
	if gotErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times, want 1", calls)
	}
}

func TestRemovePeerUnlearns(t *testing.T) {
	c := newCluster(t, 8, 9)
	victimID := c.nodes[3].ID()
	n := c.nodes[0]
	before := n.NumKnown()
	n.RemovePeer(victimID)
	if n.NumKnown() >= before {
		t.Fatalf("NumKnown did not drop: %d -> %d", before, n.NumKnown())
	}
}

func TestMaxHopsDropsLoops(t *testing.T) {
	// A node with a single peer that is not the key root and points back:
	// craft an artificial 2-cycle by seeding state manually.
	sim := netsim.New(1)
	nw := netsim.NewNetwork(sim, netsim.Config{})
	mem := transport.NewMemNetwork(nw)
	clk := clock.Sim{S: sim}
	a := NewNode(HashID("a"), mem.Endpoint(nw.AddNode(1e8, 1e8)), clk)
	b := NewNode(HashID("b"), mem.Endpoint(nw.AddNode(1e8, 1e8)), clk)
	a.Bootstrap()
	b.Bootstrap()
	a.AddPeer(b.Info())
	b.AddPeer(a.Info())
	a.MaxHops = 4
	b.MaxHops = 4
	// Route a key that terminates at one of them; even in this ad-hoc
	// overlay the message must not circulate forever.
	a.Route(HashID("some-key"), "missing-app", nil)
	sim.Run() // would hang (or grow unbounded) on an infinite loop
}
