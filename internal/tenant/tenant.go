package tenant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/trace"
)

// Sentinel errors for admission verdicts; match them with errors.Is. The
// concrete error carried by a Decision is an *AdmissionError wrapping one
// of these.
var (
	// ErrAdmissionRejected reports that the gate turned the application
	// away: admitting it would push a running tenant of equal or higher
	// priority below its guaranteed share, and the admission queue is
	// full (or disabled).
	ErrAdmissionRejected = errors.New("tenant: admission rejected")
	// ErrAdmissionQueued reports that the application was parked in the
	// admission queue; it will be submitted automatically when capacity
	// frees up.
	ErrAdmissionQueued = errors.New("tenant: admission queued")
)

// AdmissionError is the typed verdict of a failed admission.
type AdmissionError struct {
	App      string
	Priority spec.Priority
	// Queued distinguishes a parked application (retried automatically)
	// from a rejected one.
	Queued bool
	// DemandBps is the application's requested aggregate rate;
	// CapacityBps the gate's budget at decision time.
	DemandBps   float64
	CapacityBps float64
	Reason      string
}

func (e *AdmissionError) Error() string {
	verb := "rejected"
	if e.Queued {
		verb = "queued"
	}
	return fmt.Sprintf("tenant: %s %s (%s, %.0f bps of %.0f bps budget): %s",
		e.App, verb, e.Priority, e.DemandBps, e.CapacityBps, e.Reason)
}

// Unwrap makes errors.Is(err, ErrAdmissionRejected/ErrAdmissionQueued)
// work through the typed error.
func (e *AdmissionError) Unwrap() error {
	if e.Queued {
		return ErrAdmissionQueued
	}
	return ErrAdmissionRejected
}

// State is a tenant's admission state.
type State int

const (
	// StateAdmitted: the tenant holds a fair-share allocation and may run.
	StateAdmitted State = iota
	// StateQueued: the tenant waits in the admission queue.
	StateQueued
	// StateRejected: the tenant was turned away (not retained by the gate).
	StateRejected
)

// String returns the snake-free label used in snapshots and telemetry.
func (s State) String() string {
	switch s {
	case StateAdmitted:
		return "admitted"
	case StateQueued:
		return "queued"
	case StateRejected:
		return "rejected"
	}
	return "unknown"
}

// Owner receives the gate's asynchronous verdicts about a tenant it
// admitted. Implementations must not call back into the gate
// synchronously (the stream engine hops onto its own loop first).
type Owner interface {
	// TenantCapChanged reports that a fairness recompute moved the
	// tenant's rate cap (bits/sec); the owner should reallocate the
	// application to the new cap.
	TenantCapChanged(app string, capBps float64)
	// TenantPreempted reports that contention pushed the tenant out: the
	// owner should tear the application down; the gate holds it in the
	// admission queue.
	TenantPreempted(app string)
	// TenantPromoted reports that a queued tenant now fits: the owner
	// should submit the application.
	TenantPromoted(app string)
}

// Config parameterizes a Gate. The zero value is usable but admits
// nothing (zero capacity); set CapacityBps.
type Config struct {
	// CapacityBps is the aggregate cluster capacity the gate budgets, in
	// bits/sec. The gate's feasibility probe is a ledger against this
	// budget — cheap (no solver run), with the min-cost composer behind
	// it still the precise check (a composition that fails releases the
	// admission). With PerHostLedger armed and hosts registered, the
	// aggregate is derived as the sum of host budgets instead.
	CapacityBps float64
	// MaxTenants bounds concurrently admitted applications (0 =
	// unlimited).
	MaxTenants int
	// QueueCapacity bounds the admission queue (default 16; negative
	// disables queuing, so every infeasible admission is rejected).
	QueueCapacity int
	// MinShareFraction is the guaranteed floor: a tenant whose fair
	// share falls below this fraction of its demand is not viable — a
	// candidate is queued/rejected instead of admitted below it, and a
	// running tenant pushed below it by contention is preempted
	// (default 0.5, matching the adaptation plane's MinRateFraction;
	// clamped to at most 1).
	MinShareFraction float64
	// WeightCritical, WeightStandard and WeightBestEffort are the
	// water-filling weights of the priority classes (defaults 4, 2, 1).
	WeightCritical   float64
	WeightStandard   float64
	WeightBestEffort float64
	// FairShareDeadband is the relative deadband ε for cap fan-out:
	// after a recompute, a running tenant is re-notified only when its
	// cap moved by more than ε relative to the value it was last told,
	// so an admission storm touches O(changed) tenants instead of all of
	// them. Pushed caps always stay within ~ε (relative) of the exact
	// fair share. 0 — the default — notifies every change beyond float
	// noise, the exact pre-deadband behavior.
	FairShareDeadband float64
	// CapCoalesceWindow batches cap fan-out: recomputes within the
	// window collapse into a single fair_share_changed sweep when it
	// expires, so a burst of admissions costs each running tenant at
	// most one notification per window. Requires Clock; 0 (the default)
	// sweeps inline with every recompute. Preemption and promotion
	// notices are never deferred.
	CapCoalesceWindow time.Duration
	// PerHostLedger arms per-host capacity accounting: hosts registered
	// via UpsertHost carry individual budgets (the aggregate becomes
	// their sum), placements reported via SetPlacements commit rate
	// against the host they landed on, the admission feasibility probe
	// requires one host with enough uncommitted budget for the
	// candidate's guaranteed floor, and a host's death releases exactly
	// that host's budget (RemoveHost is idempotent).
	PerHostLedger bool
	// DisableIncremental forces the legacy full-recompute allocator:
	// every admission/departure/capacity event rebuilds and re-sorts the
	// whole demand vector (O(n log n)). The incremental allocator
	// (O(log n + changed) per event) is the default; this switch is kept
	// as the committed benchmark baseline and the equivalence-test
	// oracle.
	DisableIncremental bool
	// Clock timestamps journal spans and drives the coalescing window
	// (optional; zero times and inline sweeps without it).
	Clock clock.Clock
	// Journal, when set, records admit/reject/preempt/promote decisions
	// as first-class decision traces.
	Journal *trace.Journal
}

func (c *Config) defaults() {
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 16
	}
	if c.QueueCapacity < 0 {
		c.QueueCapacity = 0
	}
	if c.MinShareFraction <= 0 {
		c.MinShareFraction = 0.5
	}
	if c.MinShareFraction > 1 {
		c.MinShareFraction = 1
	}
	if c.WeightCritical <= 0 {
		c.WeightCritical = 4
	}
	if c.WeightStandard <= 0 {
		c.WeightStandard = 2
	}
	if c.WeightBestEffort <= 0 {
		c.WeightBestEffort = 1
	}
	if c.FairShareDeadband < 0 {
		c.FairShareDeadband = 0
	}
}

// Weight returns the configured water-filling weight of a class.
func (c *Config) Weight(p spec.Priority) float64 {
	switch p {
	case spec.Critical:
		return c.WeightCritical
	case spec.BestEffort:
		return c.WeightBestEffort
	}
	return c.WeightStandard
}

// Decision is the gate's verdict on one admission attempt.
type Decision struct {
	State State
	// CapBps is the admitted fair-share rate cap (≤ the demand); only
	// meaningful when State is StateAdmitted.
	CapBps float64
	// New reports a first admission; false for the idempotent re-admit
	// of an already-admitted application (a recompose resubmitting).
	New bool
	// Err is the typed *AdmissionError for queued/rejected verdicts.
	Err error
}

// tenantState is the gate's record of one tenant.
type tenantState struct {
	app         string
	pri         spec.Priority
	weight      float64 // water-filling weight of the class, fixed at admit
	demandBps   float64
	capBps      float64
	owner       Owner
	state       State
	seq         int64 // admission order, for FIFO queue ties
	admittedAt  time.Duration
	preemptions int
	// placedBps charges the tenant's placed rate against ledger hosts
	// (host id → bits/sec), set via SetPlacements.
	placedBps map[string]float64
}

// Status is a tenant's externally visible posture, served by the
// /debug/rasc/tenants endpoint and System.Tenants.
type Status struct {
	App       string  `json:"app"`
	Priority  string  `json:"priority"`
	State     string  `json:"state"`
	DemandBps float64 `json:"demandBps"`
	// CapBps is the current fair-share rate cap (admitted tenants only).
	CapBps float64 `json:"capBps,omitempty"`
	// Preemptions counts how many times contention pushed the tenant
	// back into the queue.
	Preemptions int           `json:"preemptions,omitempty"`
	AdmittedAt  time.Duration `json:"admittedAt,omitempty"`
}

// Totals is the gate's aggregate posture.
type Totals struct {
	Admitted    int     `json:"admitted"`
	Queued      int     `json:"queued"`
	CapacityBps float64 `json:"capacityBps"`
	// DemandBps is the aggregate requested rate of admitted tenants;
	// AllocatedBps the aggregate of their fair-share caps.
	DemandBps    float64 `json:"demandBps"`
	AllocatedBps float64 `json:"allocatedBps"`
	Preemptions  int64   `json:"preemptions"`
	Rejections   int64   `json:"rejections"`
}

// GateStats are cumulative decision-path counters for benchmarks and
// experiments — unlike the process-global telemetry, they are scoped to
// one gate, so A/B comparisons do not bleed into each other.
type GateStats struct {
	// Recomputes counts fairness recomputations.
	Recomputes int64 `json:"recomputes"`
	// CapNotifications counts fair_share_changed events delivered to
	// owners.
	CapNotifications int64 `json:"capNotifications"`
	// CoalescedCapEvents counts cap updates suppressed by the deadband
	// or merged into a coalesced sweep.
	CoalescedCapEvents int64 `json:"coalescedCapEvents"`
}

// Gate is a per-cluster admission controller with weighted max-min
// fairness. All methods are safe for concurrent use; owner notifications
// fire outside the gate's lock, in deterministic order.
type Gate struct {
	cfg Config

	mu       sync.Mutex
	capacity float64
	admitted map[string]*tenantState
	queue    []*tenantState // rank-descending, FIFO within a class
	nextSeq  int64

	// Incremental allocator state (unless cfg.DisableIncremental): the
	// admitted positive demands ordered by saturation level, plus the
	// water level of the last applied notification sweep.
	wf             waterfill
	lastSweepLevel float64
	sweepPending   bool    // a coalesced sweep is scheduled on the clock
	pendingMin     float64 // lowest settle level of the pending window (+Inf outside one)

	// O(1) posture counters (both paths).
	classCount [3]int // admitted tenants per priority rank
	demandSum  float64

	// Per-host capacity ledger (cfg.PerHostLedger).
	hosts      map[string]*hostState
	hostCapSum float64

	// Legacy-path scratch so the full recompute is allocation-light.
	fsDst     []float64
	fsDemands []Demand
	fsScratch FairShareScratch

	preemptions int64
	rejections  int64

	statRecomputes int64
	statCapNotifs  int64
	statCoalesced  int64
}

// NewGate builds a gate budgeting cfg.CapacityBps.
func NewGate(cfg Config) *Gate {
	cfg.defaults()
	g := &Gate{
		cfg:            cfg,
		capacity:       cfg.CapacityBps,
		admitted:       make(map[string]*tenantState),
		lastSweepLevel: math.Inf(1),
		pendingMin:     math.Inf(1),
	}
	telCapacity.Set(g.capacity)
	return g
}

// notifs collects owner notifications to deliver outside the lock.
type notifs struct {
	preempted []*tenantState
	capChange []*tenantState
	promoted  []*tenantState
}

func (n *notifs) deliver() {
	for _, t := range n.preempted {
		if t.owner != nil {
			t.owner.TenantPreempted(t.app)
		}
	}
	for _, t := range n.capChange {
		if t.owner != nil {
			t.owner.TenantCapChanged(t.app, t.capBps)
		}
	}
	for _, t := range n.promoted {
		if t.owner != nil {
			t.owner.TenantPromoted(t.app)
		}
	}
}

func (g *Gate) now() time.Duration {
	if g.cfg.Clock == nil {
		return 0
	}
	return g.cfg.Clock.Now()
}

// record writes one admission decision into the journal.
func (g *Gate) record(app, trigger, cause string, err error, attrs ...trace.Attr) {
	if g.cfg.Journal == nil {
		return
	}
	now := g.now()
	d := g.cfg.Journal.Begin(now, app, trigger, cause)
	d.Span(trigger, now, now, attrs...)
	d.Complete(now, "admission", err)
}

// registerAdmittedLocked adds a tenant to the admitted set and posture
// counters (waterfill membership is maintained explicitly by callers).
func (g *Gate) registerAdmittedLocked(t *tenantState) {
	g.admitted[t.app] = t
	g.classCount[t.pri.Rank()]++
	g.demandSum += t.demandBps
}

// unregisterAdmittedLocked removes a tenant from the admitted set and
// posture counters, and releases its committed host budget.
func (g *Gate) unregisterAdmittedLocked(t *tenantState) {
	delete(g.admitted, t.app)
	g.classCount[t.pri.Rank()]--
	g.demandSum -= t.demandBps
	g.uncommitPlacementsLocked(t)
}

// updateDemandLocked rebases a tenant's demand, keeping the counters and
// the incremental structure consistent.
func (g *Gate) updateDemandLocked(t *tenantState, demandBps float64) {
	g.demandSum += demandBps - t.demandBps
	if !g.cfg.DisableIncremental && t.demandBps > 0 {
		g.wf.remove(t.app, t.demandBps, t.weight)
	}
	t.demandBps = demandBps
	if !g.cfg.DisableIncremental && t.demandBps > 0 {
		g.wf.insert(t.app, t.demandBps, t.weight)
	}
}

// Admit decides whether the application may run. The demand is the
// application's aggregate requested rate in bits/sec; the owner receives
// later cap changes, preemptions and (for queued tenants) the promotion.
// Re-admitting an already-admitted application is idempotent and returns
// its current cap — the path a recompose takes.
func (g *Gate) Admit(app string, pri spec.Priority, demandBps float64, owner Owner) Decision {
	g.mu.Lock()
	if t, ok := g.admitted[app]; ok {
		// Idempotent re-admit (recompose). A changed demand re-settles
		// the allocation; same demand just reports the standing cap.
		if t.demandBps != demandBps {
			g.updateDemandLocked(t, demandBps)
			n := &notifs{}
			g.rebalanceDispatchLocked(n, t)
			g.refreshGaugesLocked()
			cap := t.capBps
			g.mu.Unlock()
			n.deliver()
			return Decision{State: StateAdmitted, CapBps: cap}
		}
		cap := t.capBps
		g.mu.Unlock()
		return Decision{State: StateAdmitted, CapBps: cap}
	}
	for _, q := range g.queue {
		if q.app == app {
			err := g.admissionErrLocked(q, true, "already queued")
			g.mu.Unlock()
			return Decision{State: StateQueued, Err: err}
		}
	}

	cand := &tenantState{
		app: app, pri: pri, weight: g.cfg.Weight(pri),
		demandBps: demandBps, owner: owner, seq: g.nextSeq,
	}
	g.nextSeq++

	if g.cfg.MaxTenants > 0 && len(g.admitted) >= g.cfg.MaxTenants {
		dec := g.parkLocked(cand, "tenant limit reached")
		g.refreshGaugesLocked()
		g.mu.Unlock()
		return dec
	}
	if reason, ok := g.hostProbeLocked(demandBps); !ok {
		dec := g.parkLocked(cand, reason)
		g.refreshGaugesLocked()
		g.mu.Unlock()
		return dec
	}
	n := &notifs{}
	var victims int
	admitted := false
	if g.cfg.DisableIncremental {
		shares, v, ok := g.solveLocked(cand, true)
		if ok {
			g.commitLocked(cand, shares, v, n)
			victims, admitted = len(v), true
		}
	} else {
		victims, admitted = g.incAdmitLocked(cand, n)
	}
	if !admitted {
		dec := g.parkLocked(cand, "fair share below guaranteed floor")
		g.refreshGaugesLocked()
		g.mu.Unlock()
		return dec
	}
	cand.state = StateAdmitted
	cand.admittedAt = g.now()
	telAdmissions.With("admitted").Inc()
	g.record(app, "admit", fmt.Sprintf("priority=%s demand=%.0fbps", pri, demandBps), nil,
		trace.A("priority", pri.String()),
		trace.AInt("demand_bps", int64(demandBps)),
		trace.AInt("cap_bps", int64(cand.capBps)),
		trace.AInt("victims", int64(victims)))
	g.refreshGaugesLocked()
	g.mu.Unlock()
	n.deliver()
	return Decision{State: StateAdmitted, CapBps: cand.capBps, New: true}
}

// admissionErrLocked builds the typed verdict error.
func (g *Gate) admissionErrLocked(t *tenantState, queued bool, reason string) error {
	return &AdmissionError{
		App: t.app, Priority: t.pri, Queued: queued,
		DemandBps: t.demandBps, CapacityBps: g.capacity, Reason: reason,
	}
}

// parkLocked queues the candidate if there is room, else rejects it.
func (g *Gate) parkLocked(cand *tenantState, reason string) Decision {
	if len(g.queue) < g.cfg.QueueCapacity {
		cand.state = StateQueued
		g.enqueueLocked(cand)
		telAdmissions.With("queued").Inc()
		err := g.admissionErrLocked(cand, true, reason)
		g.record(cand.app, "admit", reason, err,
			trace.A("priority", cand.pri.String()),
			trace.AInt("demand_bps", int64(cand.demandBps)),
			trace.ABool("queued", true))
		return Decision{State: StateQueued, Err: err}
	}
	g.rejections++
	telAdmissions.With("rejected").Inc()
	err := g.admissionErrLocked(cand, false, reason)
	g.record(cand.app, "reject", reason, err,
		trace.A("priority", cand.pri.String()),
		trace.AInt("demand_bps", int64(cand.demandBps)))
	return Decision{State: StateRejected, Err: err}
}

// enqueueLocked inserts by priority rank (descending), FIFO within a
// class.
func (g *Gate) enqueueLocked(t *tenantState) {
	i := sort.Search(len(g.queue), func(i int) bool {
		if g.queue[i].pri.Rank() != t.pri.Rank() {
			return g.queue[i].pri.Rank() < t.pri.Rank()
		}
		return g.queue[i].seq > t.seq
	})
	g.queue = append(g.queue, nil)
	copy(g.queue[i+1:], g.queue[i:])
	g.queue[i] = t
}

// evictLocked performs the shared preemption bookkeeping: the victim
// leaves the admitted set (waterfill membership is the caller's concern)
// and moves to the queue, or is rejected when the queue is full.
func (g *Gate) evictLocked(v *tenantState, n *notifs) {
	g.unregisterAdmittedLocked(v)
	v.preemptions++
	g.preemptions++
	telPreemptions.Inc()
	g.record(v.app, "preempt", "displaced by higher-priority contention", nil,
		trace.A("priority", v.pri.String()),
		trace.AInt("preemptions", int64(v.preemptions)))
	if len(g.queue) < g.cfg.QueueCapacity {
		v.state = StateQueued
		v.seq = g.nextSeq // re-queue at the back of its class
		g.nextSeq++
		g.enqueueLocked(v)
	} else {
		v.state = StateRejected
		g.rejections++
		telAdmissions.With("rejected").Inc()
		g.record(v.app, "reject", "preempted with full admission queue",
			g.admissionErrLocked(v, false, "preempted with full admission queue"))
	}
	n.preempted = append(n.preempted, v)
}

// rebalanceDispatchLocked routes a re-settle to the configured allocator.
func (g *Gate) rebalanceDispatchLocked(n *notifs, skip *tenantState) {
	if g.cfg.DisableIncremental {
		g.rebalanceLocked(n, skip)
	} else {
		g.incRebalanceLocked(n, skip)
	}
}

// ---------------------------------------------------------------------
// Legacy full-recompute path (cfg.DisableIncremental). Kept verbatim in
// behavior: it is the committed benchmark baseline and the oracle the
// incremental path is property-tested against.
// ---------------------------------------------------------------------

// solveLocked computes the water-filling allocation with cand tentatively
// in the pool (cand nil = rebalance of the standing tenants). It returns
// the per-app shares and the tenants that must be preempted to make the
// allocation viable. ok is false when no viable allocation exists without
// degrading a tenant of rank ≥ cand's below the guaranteed floor.
//
// allowEvict false (queue promotions) demands a clean fit: no preemption,
// no floor violations.
func (g *Gate) solveLocked(cand *tenantState, allowEvict bool) (map[string]float64, []*tenantState, bool) {
	start := time.Now()
	defer func() { telRecomputeLatency.Observe(time.Since(start).Seconds()) }()
	pool := make([]*tenantState, 0, len(g.admitted)+1)
	for _, t := range g.admitted {
		pool = append(pool, t)
	}
	if cand != nil {
		pool = append(pool, cand)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].app < pool[j].app })
	var victims []*tenantState
	for {
		g.fsDemands = g.fsDemands[:0]
		for _, t := range pool {
			g.fsDemands = append(g.fsDemands, Demand{App: t.app, Bps: t.demandBps, Weight: g.cfg.Weight(t.pri)})
		}
		g.fsDst = FairSharesInto(g.fsDst, &g.fsScratch, g.fsDemands, g.capacity)
		shares := g.fsDst
		viable := true
		for i, t := range pool {
			if shares[i] < g.cfg.MinShareFraction*t.demandBps-1e-9 {
				viable = false
				break
			}
		}
		if viable {
			out := make(map[string]float64, len(pool))
			for i, t := range pool {
				out[t.app] = shares[i]
			}
			return out, victims, true
		}
		if !allowEvict {
			return nil, nil, false
		}
		// Evict the lowest-ranked evictable tenant: below cand's rank in
		// admission mode, below the pool's top rank (and itself below
		// floor) in rebalance mode. Ties: largest demand frees the most,
		// then app for determinism.
		var best *tenantState
		bestIdx := -1
		for i, t := range pool {
			if t == cand {
				continue
			}
			if cand != nil {
				if t.pri.Rank() >= cand.pri.Rank() {
					continue
				}
			} else {
				if t.pri.Rank() >= maxRank(pool) || shares[i] >= g.cfg.MinShareFraction*t.demandBps-1e-9 {
					continue
				}
			}
			if best == nil || less(t, best) {
				best, bestIdx = t, i
			}
		}
		if best == nil {
			if cand == nil {
				// Rebalance with nothing to shed: the surviving class
				// shares the shortage below floor.
				out := make(map[string]float64, len(pool))
				for i, t := range pool {
					out[t.app] = shares[i]
				}
				return out, victims, true
			}
			return nil, nil, false
		}
		victims = append(victims, best)
		pool = append(pool[:bestIdx], pool[bestIdx+1:]...)
	}
}

// less orders eviction candidates: lowest rank first, then largest
// demand, then app ascending.
func less(a, b *tenantState) bool {
	if a.pri.Rank() != b.pri.Rank() {
		return a.pri.Rank() < b.pri.Rank()
	}
	if a.demandBps != b.demandBps {
		return a.demandBps > b.demandBps
	}
	return a.app < b.app
}

func maxRank(pool []*tenantState) int {
	r := 0
	for _, t := range pool {
		if t.pri.Rank() > r {
			r = t.pri.Rank()
		}
	}
	return r
}

// commitLocked applies a solved allocation: victims move to the queue,
// cand (if any) joins the admitted set, and cap changes are collected for
// delivery.
func (g *Gate) commitLocked(cand *tenantState, shares map[string]float64, victims []*tenantState, n *notifs) {
	g.statRecomputes++
	telRecomputes.Inc()
	for _, v := range victims {
		g.evictLocked(v, n)
	}
	if cand != nil {
		g.registerAdmittedLocked(cand)
	}
	apps := make([]string, 0, len(g.admitted))
	for app := range g.admitted {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		t := g.admitted[app]
		cap, ok := shares[app]
		if !ok {
			continue
		}
		if t == cand {
			t.capBps = cap
			continue
		}
		if math.Abs(cap-t.capBps) > 1e-6 {
			t.capBps = cap
			g.statCapNotifs++
			telCapChanges.Inc()
			n.capChange = append(n.capChange, t)
		}
	}
}

// rebalanceLocked re-settles the standing allocation (after a departure,
// demand update or capacity change), then promotes queued tenants that
// now fit cleanly.
func (g *Gate) rebalanceLocked(n *notifs, skipNotify *tenantState) {
	if len(g.admitted) > 0 {
		shares, victims, _ := g.solveLocked(nil, true)
		g.commitLocked(nil, shares, victims, n)
		if skipNotify != nil {
			kept := n.capChange[:0]
			for _, t := range n.capChange {
				if t != skipNotify {
					kept = append(kept, t)
				}
			}
			n.capChange = kept
		}
	}
	g.promoteLocked(n)
}

// promoteLocked admits queued tenants that fit without preemption, in
// priority order.
func (g *Gate) promoteLocked(n *notifs) {
	for i := 0; i < len(g.queue); {
		q := g.queue[i]
		if g.cfg.MaxTenants > 0 && len(g.admitted) >= g.cfg.MaxTenants {
			return
		}
		shares, _, ok := g.solveLocked(q, false)
		if !ok {
			i++
			continue
		}
		g.queue = append(g.queue[:i], g.queue[i+1:]...)
		g.commitLocked(q, shares, nil, n)
		q.state = StateAdmitted
		q.admittedAt = g.now()
		telAdmissions.With("promoted").Inc()
		g.record(q.app, "promote", "capacity freed", nil,
			trace.A("priority", q.pri.String()),
			trace.AInt("cap_bps", int64(q.capBps)))
		n.promoted = append(n.promoted, q)
	}
}

// ---------------------------------------------------------------------
// Incremental path (the default): the waterfill treap gives the water
// level in O(log n), the closed form share = min(demand, L·weight) gives
// each cap without touching the others, and fan-out visits only the
// suffix of entries whose share can have moved.
// ---------------------------------------------------------------------

// incViableLocked reports whether the admitted set is viable at water
// level L: every tenant's share is at least MinShareFraction of its
// demand (within the oracle's 1e-9 slack). Satisfied tenants always pass
// (the floor fraction is ≤ 1), so only the highest-level entry — the
// worst share/demand ratio — needs checking.
func (g *Gate) incViableLocked(L float64) bool {
	if math.IsInf(L, 1) {
		return true
	}
	e := g.wf.maxEntry()
	if e == nil {
		return true
	}
	return wfShare(e, L) >= g.cfg.MinShareFraction*e.demand-1e-9
}

// shareForLocked is one tenant's exact share at water level L.
func (g *Gate) shareForLocked(t *tenantState, L float64) float64 {
	if t.demandBps <= 0 {
		return 0
	}
	e := wfEntry{demand: t.demandBps, weight: t.weight, level: t.demandBps / t.weight}
	return wfShare(&e, L)
}

// incAdmitLocked decides an admission on the incremental structure:
// tentatively insert the candidate, peel off lower-ranked victims while
// the allocation is not viable, then commit — or roll the structure back
// untouched when no viable allocation exists.
func (g *Gate) incAdmitLocked(cand *tenantState, n *notifs) (int, bool) {
	if cand.demandBps > 0 {
		g.wf.insert(cand.app, cand.demandBps, cand.weight)
	}
	var victims []*tenantState
	var taken map[*tenantState]bool
	viable := false
	for {
		L := g.wf.level(g.capacity)
		if g.incViableLocked(L) {
			viable = true
			break
		}
		v := g.incPickVictimLocked(cand.pri.Rank(), taken)
		if v == nil {
			break
		}
		if taken == nil {
			taken = make(map[*tenantState]bool)
		}
		taken[v] = true
		victims = append(victims, v)
		if v.demandBps > 0 {
			g.wf.remove(v.app, v.demandBps, v.weight)
		}
	}
	if !viable {
		for _, v := range victims {
			if v.demandBps > 0 {
				g.wf.insert(v.app, v.demandBps, v.weight)
			}
		}
		if cand.demandBps > 0 {
			g.wf.remove(cand.app, cand.demandBps, cand.weight)
		}
		return 0, false
	}
	for _, v := range victims {
		g.evictLocked(v, n)
	}
	g.registerAdmittedLocked(cand)
	g.incSettleLocked(n, cand)
	return len(victims), true
}

// incPickVictimLocked selects the admission-mode eviction victim: the
// lowest-ranked admitted tenant strictly below belowRank (largest demand
// first, then app ascending), excluding tenants already taken.
func (g *Gate) incPickVictimLocked(belowRank int, taken map[*tenantState]bool) *tenantState {
	var best *tenantState
	for _, t := range g.admitted {
		if t.pri.Rank() >= belowRank || taken[t] {
			continue
		}
		if best == nil || less(t, best) {
			best = t
		}
	}
	return best
}

// incPickRebalanceVictimLocked selects the rebalance-mode victim: a
// below-floor tenant of a class below the highest admitted class. Only
// entries with level > L/floor can be below floor, so the scan is a
// suffix walk, not a full sweep.
func (g *Gate) incPickRebalanceVictimLocked(L float64) *tenantState {
	top := g.maxRankLocked()
	f := g.cfg.MinShareFraction
	var best *tenantState
	g.wf.suffix(L/f, func(e *wfEntry) {
		if wfShare(e, L) >= f*e.demand-1e-9 {
			return
		}
		t := g.admitted[e.app]
		if t == nil || t.pri.Rank() >= top {
			return
		}
		if best == nil || less(t, best) {
			best = t
		}
	})
	return best
}

func (g *Gate) maxRankLocked() int {
	for r := len(g.classCount) - 1; r > 0; r-- {
		if g.classCount[r] > 0 {
			return r
		}
	}
	return 0
}

// incRebalanceLocked re-settles after a departure, demand update or
// capacity change: preempt below-floor tenants of the lower classes
// while a higher class is present, promote queued tenants that now fit,
// then sweep cap updates in one pass.
func (g *Gate) incRebalanceLocked(n *notifs, skip *tenantState) {
	for len(g.admitted) > 0 {
		L := g.wf.level(g.capacity)
		if g.incViableLocked(L) {
			break
		}
		v := g.incPickRebalanceVictimLocked(L)
		if v == nil {
			break // nothing to shed: survivors share the shortage below floor
		}
		if v.demandBps > 0 {
			g.wf.remove(v.app, v.demandBps, v.weight)
		}
		g.evictLocked(v, n)
	}
	g.incPromoteLocked(n)
	g.incSettleLocked(n, skip)
}

// incPromoteLocked admits queued tenants that fit cleanly (no eviction,
// no floor violation), in priority order.
func (g *Gate) incPromoteLocked(n *notifs) {
	for i := 0; i < len(g.queue); {
		q := g.queue[i]
		if g.cfg.MaxTenants > 0 && len(g.admitted) >= g.cfg.MaxTenants {
			return
		}
		if q.demandBps > 0 {
			g.wf.insert(q.app, q.demandBps, q.weight)
		}
		L := g.wf.level(g.capacity)
		if !g.incViableLocked(L) {
			if q.demandBps > 0 {
				g.wf.remove(q.app, q.demandBps, q.weight)
			}
			i++
			continue
		}
		g.queue = append(g.queue[:i], g.queue[i+1:]...)
		g.registerAdmittedLocked(q)
		q.capBps = g.shareForLocked(q, L)
		q.state = StateAdmitted
		q.admittedAt = g.now()
		telAdmissions.With("promoted").Inc()
		g.record(q.app, "promote", "capacity freed", nil,
			trace.A("priority", q.pri.String()),
			trace.AInt("cap_bps", int64(q.capBps)))
		n.promoted = append(n.promoted, q)
	}
}

// incSettleLocked recomputes the water level after a structural change
// and fans out cap updates. skip — the tenant whose join or demand
// change caused the settle — always receives its exact share silently
// (its Decision carries the cap). With a coalescing window configured,
// the fan-out is deferred to one sweep per window.
func (g *Gate) incSettleLocked(n *notifs, skip *tenantState) {
	start := time.Now()
	g.statRecomputes++
	telRecomputes.Inc()
	telRecomputesInc.Inc()
	L := g.wf.level(g.capacity)
	if skip != nil && g.admitted[skip.app] == skip {
		// Still admitted — a demand change that evicted skip itself keeps
		// its last cap, like the full-recompute path.
		skip.capBps = g.shareForLocked(skip, L)
	}
	// Tenants promoted this operation had their caps fixed at the water
	// level of their own insertion; later promotions in the same pass can
	// have moved it. Refresh them at the final level silently (the
	// promotion notice already carries their admission) — the fan-out
	// below would otherwise be entitled to skip them.
	for _, q := range n.promoted {
		if g.admitted[q.app] != q {
			continue
		}
		if c := g.shareForLocked(q, L); math.Abs(c-q.capBps) > 1e-6 {
			q.capBps = c
		}
	}
	if g.cfg.CapCoalesceWindow > 0 && g.cfg.Clock != nil {
		// Caps set exactly during the window (admits, promotions) pin
		// their tenants at this settle's level; the deferred sweep must
		// bound its suffix below every such level to catch them all.
		if L < g.pendingMin {
			g.pendingMin = L
		}
		if g.sweepPending {
			// Merged into the already-scheduled sweep.
			g.statCoalesced++
			telCoalesced.Inc()
		} else {
			g.sweepPending = true
			g.cfg.Clock.After(g.cfg.CapCoalesceWindow, g.coalescedSweep)
		}
	} else {
		g.incFanoutLocked(L, skip, n, math.Inf(1))
	}
	telRecomputeLatency.Observe(time.Since(start).Seconds())
}

// coalescedSweep is the deferred fan-out at the end of a coalescing
// window: one sweep covers every recompute that landed in the window.
func (g *Gate) coalescedSweep() {
	g.mu.Lock()
	g.sweepPending = false
	windowMin := g.pendingMin
	g.pendingMin = math.Inf(1)
	n := &notifs{}
	g.incFanoutLocked(g.wf.level(g.capacity), nil, n, windowMin)
	g.refreshGaugesLocked()
	g.mu.Unlock()
	n.deliver()
}

// incFanoutLocked pushes cap updates for the move to water level L. Only
// entries with saturation level above bound = min(lastSweepLevel, L) can
// have moved since the last applied sweep — everything at or below the
// bound was satisfied (cap = demand) before and still is. When the level
// itself drifted no further than the deadband, the whole sweep is
// skipped: an unsatisfied tenant's cap is L·weight, so its relative
// drift equals the level's.
func (g *Gate) incFanoutLocked(L float64, skip *tenantState, n *notifs, windowMin float64) {
	drift := relDiff(L, g.lastSweepLevel)
	// A coalescing-window flush (finite windowMin) may have pinned caps
	// at intermediate settle levels, so it must sweep even with zero net
	// level drift, bounded below every such level; the per-entry checks
	// still keep the notification set to what actually moved.
	flush := !math.IsInf(windowMin, 1)
	if drift == 0 && !flush {
		return
	}
	bound := math.Min(math.Min(L, g.lastSweepLevel), windowMin)
	db := g.cfg.FairShareDeadband
	if db > 0 && drift <= db && !flush {
		sup := g.wf.countAbove(bound)
		g.statCoalesced += int64(sup)
		telCoalesced.Add(uint64(sup))
		return
	}
	g.wf.suffix(bound, func(e *wfEntry) {
		t := g.admitted[e.app]
		if t == nil || t == skip {
			return
		}
		newCap := wfShare(e, L)
		diff := math.Abs(newCap - t.capBps)
		if diff <= 1e-6 {
			return
		}
		if db > 0 && diff <= db*math.Abs(t.capBps) {
			g.statCoalesced++
			telCoalesced.Inc()
			return
		}
		t.capBps = newCap
		g.statCapNotifs++
		telCapChanges.Inc()
		n.capChange = append(n.capChange, t)
	})
	g.lastSweepLevel = L
}

// relDiff is the relative difference of two water levels (0 for
// bit-equal values, including two +Inf levels).
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.Inf(1)
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// ---------------------------------------------------------------------

// Release removes the application from the gate — it finished, was torn
// down, or its composition failed — re-settling the remaining tenants'
// caps and promoting queued ones that now fit. Releasing an unknown or
// queued application just forgets it.
func (g *Gate) Release(app string) {
	g.mu.Lock()
	if t, ok := g.admitted[app]; ok {
		if !g.cfg.DisableIncremental && t.demandBps > 0 {
			g.wf.remove(t.app, t.demandBps, t.weight)
		}
		g.unregisterAdmittedLocked(t)
		n := &notifs{}
		g.rebalanceDispatchLocked(n, nil)
		g.refreshGaugesLocked()
		g.mu.Unlock()
		n.deliver()
		return
	}
	for i, q := range g.queue {
		if q.app == app {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	g.refreshGaugesLocked()
	g.mu.Unlock()
}

// SetCapacity rebases the gate's budget (membership or provisioning
// change) and re-settles every allocation. With a per-host ledger armed
// the aggregate is normally derived from host budgets — the next
// UpsertHost/RemoveHost overrides a manual SetCapacity.
func (g *Gate) SetCapacity(bps float64) {
	g.mu.Lock()
	if bps < 0 {
		bps = 0
	}
	g.capacity = bps
	n := &notifs{}
	g.rebalanceDispatchLocked(n, nil)
	g.refreshGaugesLocked()
	g.mu.Unlock()
	n.deliver()
}

// AddCapacity adjusts the budget by delta (negative when a member died).
func (g *Gate) AddCapacity(delta float64) {
	g.mu.Lock()
	cap := g.capacity + delta
	g.mu.Unlock()
	g.SetCapacity(cap)
}

// CapacityBps returns the current budget.
func (g *Gate) CapacityBps() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.capacity
}

// Has reports whether the gate still tracks the application (admitted or
// queued).
func (g *Gate) Has(app string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.admitted[app]; ok {
		return true
	}
	for _, q := range g.queue {
		if q.app == app {
			return true
		}
	}
	return false
}

// CapBps returns the application's current fair-share rate cap; ok is
// false when the application is not admitted.
func (g *Gate) CapBps(app string) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.admitted[app]
	if !ok {
		return 0, false
	}
	return t.capBps, true
}

// Totals returns the gate's aggregate posture.
func (g *Gate) Totals() Totals {
	g.mu.Lock()
	defer g.mu.Unlock()
	tt := Totals{
		Admitted: len(g.admitted), Queued: len(g.queue),
		CapacityBps: g.capacity, DemandBps: g.demandSum,
		Preemptions: g.preemptions, Rejections: g.rejections,
	}
	for _, t := range g.admitted {
		tt.AllocatedBps += t.capBps
	}
	return tt
}

// Stats returns the gate-scoped decision counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{
		Recomputes:         g.statRecomputes,
		CapNotifications:   g.statCapNotifs,
		CoalescedCapEvents: g.statCoalesced,
	}
}

// Snapshot lists every retained tenant: admitted ones sorted by app, then
// the queue in promotion order.
func (g *Gate) Snapshot() []Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	apps := make([]string, 0, len(g.admitted))
	for app := range g.admitted {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	out := make([]Status, 0, len(apps)+len(g.queue))
	for _, app := range apps {
		t := g.admitted[app]
		out = append(out, Status{
			App: t.app, Priority: t.pri.String(), State: t.state.String(),
			DemandBps: t.demandBps, CapBps: t.capBps,
			Preemptions: t.preemptions, AdmittedAt: t.admittedAt,
		})
	}
	for _, t := range g.queue {
		out = append(out, Status{
			App: t.app, Priority: t.pri.String(), State: t.state.String(),
			DemandBps: t.demandBps, Preemptions: t.preemptions,
		})
	}
	return out
}

// refreshGaugesLocked re-derives the posture gauges from the O(1)
// counters (a full tenant scan here would defeat the incremental path).
func (g *Gate) refreshGaugesLocked() {
	for _, p := range []spec.Priority{spec.Critical, spec.Standard, spec.BestEffort} {
		telActive.With(p.String()).Set(float64(g.classCount[p.Rank()]))
	}
	telQueued.Set(float64(len(g.queue)))
	telCapacity.Set(g.capacity)
	telDemand.Set(g.demandSum)
	telHosts.Set(float64(len(g.hosts)))
}

// CapRequest scales a request's substream rates down proportionally so
// the aggregate fits capBps, keeping every substream at least one
// unit/sec. A cap at or above the demand — or one so close that flooring
// changes no substream rate — returns the request unchanged without
// copying.
func CapRequest(req spec.Request, capBps float64) spec.Request {
	demand := req.BitsPerSecond(req.TotalRate())
	if capBps <= 0 || demand <= capBps {
		return req
	}
	f := capBps / demand
	// Fair-share caps routinely land a float ulp below the demand; when
	// the floored rates all come out unchanged, skip the deep copy.
	changed := false
	for i := range req.Substreams {
		r := int(math.Floor(float64(req.Substreams[i].Rate) * f))
		if r < 1 {
			r = 1
		}
		if r != req.Substreams[i].Rate {
			changed = true
			break
		}
	}
	if !changed {
		return req
	}
	subs := make([]spec.Substream, len(req.Substreams))
	copy(subs, req.Substreams)
	for i := range subs {
		r := int(math.Floor(float64(subs[i].Rate) * f))
		if r < 1 {
			r = 1
		}
		subs[i].Rate = r
	}
	req.Substreams = subs
	return req
}
