// Package deploy assembles complete simulated RASC deployments: a joined
// overlay cluster with DHT, discovery and a stream engine on every node,
// plus seeded service placement — the substrate for integration tests,
// examples and the experiment harness.
package deploy

import (
	"math/rand"
	"strconv"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/dht"
	"rasc.dev/rasc/internal/discovery"
	"rasc.dev/rasc/internal/federation"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/simnet"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/transport"
)

// FederationOptions shards a deployment into clusters joined by the
// federation boundary protocol: node i joins cluster i mod Clusters, the
// generated topology's sites align with the clusters (inter-cluster hops
// cross wide-area inter-site latency), full gossip stays intra-cluster,
// and each cluster's first BorderPeers nodes exchange compact summaries
// with their counterparts in every other cluster. Federated deployments
// imply EnableGossip.
type FederationOptions struct {
	// Clusters is the number of clusters (required, ≥ 1). One cluster is
	// the federated-but-alone configuration, pinned bit-identical to the
	// flat composer.
	Clusters int
	// BorderPeers is how many nodes per cluster run the summary exchange
	// (default 1).
	BorderPeers int
	// BoundaryBps is each inter-cluster boundary link's capacity
	// (default 100 Mbps).
	BoundaryBps float64
	// ClusterServices, when set, restricts cluster k's announcements to
	// ClusterServices[k mod len] — the lever experiments use to force
	// cross-cluster hand-offs (no single cluster offers every service).
	ClusterServices [][]string
}

func (f *FederationOptions) defaults() {
	if f.Clusters < 1 {
		f.Clusters = 1
	}
	if f.BorderPeers < 1 {
		f.BorderPeers = 1
	}
	if f.BoundaryBps <= 0 {
		f.BoundaryBps = 1e8
	}
}

// ClusterName names cluster k ("c0", "c1", …).
func ClusterName(k int) string { return "c" + strconv.Itoa(k) }

// SystemOptions configures a full simulated RASC deployment.
type SystemOptions struct {
	// Nodes and Seed size and seed the deployment.
	Nodes int
	Seed  int64
	// Topology overrides the generated PlanetLab-like topology.
	Topology *netsim.Topology
	// Jitter is the per-message latency jitter (0 selects the default).
	Jitter time.Duration
	// LossRate is the random message loss probability.
	LossRate float64
	// MaxLinkBacklog bounds link buffers; congestion beyond it drops
	// data units (0 = unbounded).
	MaxLinkBacklog time.Duration
	// CongestionJitter adds backlog-proportional delivery jitter.
	CongestionJitter float64
	// Chaos, when set, wraps every node's endpoint with fault injection
	// (drop/delay/duplicate/reorder, plus on-demand partitions through
	// System.Chaos[i]). Each node derives its own deterministic seed from
	// the deployment seed; delays run on virtual time.
	Chaos *transport.ChaosConfig

	// Catalog defaults to services.Standard().
	Catalog services.Catalog
	// ServicesPerNode is how many services each node announces
	// (default 5, as in §4.1). Zero services means no placement here.
	ServicesPerNode int
	// ServiceNames restricts placement to a subset of the catalog
	// (default: all catalog services).
	ServiceNames []string
	// SchedPolicy, ProcJitter, QueueCapacity, TimelyFactor, StatsMaxAge
	// and KeepDelaySamples feed every engine's Config.
	SchedPolicy      string
	ProcJitter       float64
	QueueCapacity    int
	TimelyFactor     float64
	StatsMaxAge      time.Duration
	KeepDelaySamples bool
	// HeterogeneousCPU draws per-node speed factors in [0.6, 1.4).
	HeterogeneousCPU bool
	// BackgroundFlows adds this many constant-bit-rate cross-traffic
	// flows between random node pairs (PlanetLab's shared-slice load).
	// Each runs at BackgroundBps. Background traffic consumes link
	// capacity but is invisible to the nodes' own monitors, so measured
	// availability overestimates — drop feedback becomes the only
	// signal, as on the real testbed. Deployments with background flows
	// must advance time with RunUntil (the event queue never drains).
	BackgroundFlows int
	// BackgroundBps is the per-flow rate (default 50 Kbps).
	BackgroundBps float64

	// EnableGossip runs a gossip membership instance on every node: the
	// directory answers lookups from the converged view (DHT fallback),
	// composition reads gossip-fresh stats, and member-dead events prune
	// routing state and trigger immediate recomposition at the origins.
	// Gossip loops reschedule forever, so gossip-enabled deployments must
	// advance time with RunUntil.
	EnableGossip bool
	// Gossip tunes the protocol when EnableGossip is set. Note the
	// defaults (300ms probe timeout) are tight against the simulated
	// PlanetLab inter-site RTTs (up to ~330ms); deployments wanting no
	// false suspicions should raise ProbeTimeout to ≥500ms.
	Gossip gossip.Config

	// Adaptation, when set, enables the event-driven adaptation control
	// plane on every engine (periodic delivery-rate checks plus
	// incremental reallocation on member-dead, breaker and drop-spike
	// events). Adaptation loops reschedule forever, so such deployments
	// must advance time with RunUntil.
	Adaptation *stream.AdaptationConfig

	// Tenancy, when set, fronts every engine's Submit path with one
	// shared admission gate: priority-weighted max-min fair-share caps,
	// an admission queue, and preemption under contention. A zero
	// CapacityBps defaults to 90% of the topology's aggregate access
	// capacity; Clock and Journal are filled in from the deployment.
	Tenancy *tenant.Config

	// DataPlane tunes every engine's data-unit path (wire batching, flush
	// deadline, execution shards). The zero value is the legacy per-unit
	// path, bit-identical to the pre-batching engine.
	DataPlane stream.DataPlaneConfig

	// Federation, when set, shards the deployment into clusters with
	// cluster-scoped composers and the inter-cluster boundary protocol.
	// Implies EnableGossip (summaries ride the gossip border exchange).
	Federation *FederationOptions
}

// System is a running simulated deployment: a joined overlay with DHT,
// discovery and a stream engine on every node, services announced.
type System struct {
	*simnet.Cluster
	Options SystemOptions
	Stores  []*dht.Store
	Dirs    []*discovery.Directory
	Engines []*stream.Engine
	// Gossip holds each node's membership instance (nil entries when
	// EnableGossip is off).
	Gossip []*gossip.Gossip
	// Chaos holds each node's fault injector (nil when Options.Chaos is
	// unset) — the handle for mid-run Partition/Heal.
	Chaos []*transport.Chaos
	// Placement records which services each node announced.
	Placement [][]string
	// Journal collects every engine's adaptation decision traces in one
	// deployment-wide ring (simulated nodes share the process, so one
	// journal sees the whole causal story).
	Journal *trace.Journal
	// Gate is the deployment-wide admission gate (nil when Options.Tenancy
	// is unset). Federated deployments run one gate per cluster instead:
	// Gate aliases cluster 0's and Gates holds them all.
	Gate *tenant.Gate
	// Gates holds the per-cluster admission gates of a federated tenancy
	// deployment, indexed by cluster number (nil otherwise).
	Gates []*tenant.Gate
	// Federation holds each node's coordinator (nil when
	// Options.Federation is unset).
	Federation []*federation.Coordinator
	// Ledgers holds each cluster's boundary-capacity arbiter, indexed by
	// cluster number (nil when Options.Federation is unset).
	Ledgers []*federation.Ledger
	// ClusterOf names each node's cluster ("" when unfederated).
	ClusterOf []string
}

// NewSystem builds and starts a deployment. After it returns, the overlay
// is joined, every node's services are registered in the DHT, and the
// simulator has quiesced.
func NewSystem(opts SystemOptions) *System {
	if opts.Catalog == nil {
		opts.Catalog = services.Standard()
	}
	if opts.ServicesPerNode == 0 {
		opts.ServicesPerNode = 5
	}
	names := opts.ServiceNames
	if names == nil {
		names = opts.Catalog.Names()
	}
	fo := opts.Federation
	if fo != nil {
		fo.defaults()
		// Summaries ride the gossip border exchange, and cluster-scoped
		// stats need cluster-scoped digests.
		opts.EnableGossip = true
		if opts.Topology == nil && fo.Clusters > 1 {
			// Align sites with clusters (both assign by i mod k), so an
			// inter-cluster hop crosses wide-area inter-site latency. A
			// single cluster keeps the default topology — the same one a
			// flat deployment generates, preserving the equivalence pin.
			opts.Topology = netsim.PlanetLabTopology(netsim.TopologyConfig{
				Nodes: opts.Nodes, Sites: fo.Clusters,
			}, opts.Seed)
		}
	}
	clusterOf := func(i int) int {
		if fo == nil {
			return 0
		}
		return i % fo.Clusters
	}
	simOpts := simnet.Options{
		N:                opts.Nodes,
		Seed:             opts.Seed,
		Topology:         opts.Topology,
		Jitter:           opts.Jitter,
		LossRate:         opts.LossRate,
		MaxLinkBacklog:   opts.MaxLinkBacklog,
		CongestionJitter: opts.CongestionJitter,
	}
	var chaosEPs []*transport.Chaos
	if opts.Chaos != nil {
		chaosEPs = make([]*transport.Chaos, opts.Nodes)
		simOpts.WrapEndpoint = func(i int, ep transport.Endpoint, clk clock.Clock) transport.Endpoint {
			cfg := *opts.Chaos
			if cfg.Seed == 0 {
				cfg.Seed = opts.Seed + 1 // stay deterministic under the simulator
			}
			cfg.Seed = cfg.Seed*1_000_003 + int64(i)
			ch := transport.NewChaos(ep, cfg, clk)
			chaosEPs[i] = ch
			return ch
		}
	}
	if fo != nil {
		// Cluster identity must be set before any join: it rides NodeInfo
		// through the overlay, and gossip scopes membership by it.
		simOpts.ConfigureNode = func(i int, n *overlay.Node) {
			n.SetCluster(ClusterName(clusterOf(i)))
		}
	}
	c := simnet.New(simOpts)
	s := &System{Cluster: c, Options: opts, Chaos: chaosEPs}
	s.ClusterOf = make([]string, opts.Nodes)
	if fo != nil {
		for i := range s.ClusterOf {
			s.ClusterOf[i] = ClusterName(clusterOf(i))
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
	for i, node := range c.Nodes {
		store := dht.New(node, c.Clock)
		dir := discovery.New(node, store, c.Clock)
		speed := 1.0
		if opts.HeterogeneousCPU {
			speed = 0.6 + 0.8*rng.Float64()
		}
		cfg := stream.Config{
			InBps:            c.Topology.DownBps[i],
			OutBps:           c.Topology.UpBps[i],
			SpeedFactor:      speed,
			SchedPolicy:      opts.SchedPolicy,
			ProcJitter:       opts.ProcJitter,
			QueueCapacity:    opts.QueueCapacity,
			TimelyFactor:     opts.TimelyFactor,
			StatsMaxAge:      opts.StatsMaxAge,
			KeepDelaySamples: opts.KeepDelaySamples,
			DataPlane:        opts.DataPlane,
		}
		engRng := rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(i)))
		eng := stream.NewEngine(node, c.Clock, dir, opts.Catalog, engRng, cfg)
		s.Stores = append(s.Stores, store)
		s.Dirs = append(s.Dirs, dir)
		s.Engines = append(s.Engines, eng)
	}
	// Announce services: each node offers ServicesPerNode services drawn
	// without replacement, seeded, so the replication degree matches
	// §4.1 in expectation.
	s.Placement = make([][]string, len(c.Nodes))
	for i, d := range s.Dirs {
		cnames := names
		if fo != nil && len(fo.ClusterServices) > 0 {
			cnames = fo.ClusterServices[clusterOf(i)%len(fo.ClusterServices)]
		}
		perNode := opts.ServicesPerNode
		if perNode > len(cnames) {
			perNode = len(cnames)
		}
		idx := rng.Perm(len(cnames))[:perNode]
		for _, k := range idx {
			d.Announce(cnames[k])
			s.Placement[i] = append(s.Placement[i], cnames[k])
		}
	}
	c.Sim.Run()
	// Every engine writes its decision traces into one shared journal,
	// sized for a deployment's worth of adaptations. Built before gossip
	// and tenancy so both record into it from the first event.
	s.Journal = trace.NewJournal(4 * trace.DefaultJournalCapacity)
	for _, eng := range s.Engines {
		eng.SetDecisionJournal(s.Journal)
	}
	// One shared admission gate per cluster fronts the engines' Submit
	// paths (a flat deployment is one cluster). The default budget is half
	// the cluster's aggregate access capacity (each streamed unit crosses
	// an uplink and a downlink) with 10% headroom for control traffic.
	nClusters := 1
	if fo != nil {
		nClusters = fo.Clusters
	}
	var nodeShare []float64
	clusterShare := make([]float64, nClusters)
	if opts.Tenancy != nil {
		nodeShare = make([]float64, opts.Nodes)
		for i := range c.Nodes {
			down, up := c.Topology.DownBps[i], c.Topology.UpBps[i]
			nodeShare[i] = down
			if up < down {
				nodeShare[i] = up
			}
			clusterShare[clusterOf(i)] += nodeShare[i]
		}
		gates := make([]*tenant.Gate, nClusters)
		for k := range gates {
			tcfg := *opts.Tenancy
			if tcfg.CapacityBps <= 0 {
				tcfg.CapacityBps = 0.9 * clusterShare[k] / 2
			}
			if tcfg.Clock == nil {
				tcfg.Clock = c.Clock
			}
			if tcfg.Journal == nil {
				tcfg.Journal = s.Journal
			}
			gates[k] = tenant.NewGate(tcfg)
		}
		for i, node := range c.Nodes {
			k := clusterOf(i)
			if gates[k].PerHostLedger() && clusterShare[k] > 0 {
				// Seed the per-host ledger from the topology — cluster by
				// cluster: a node only ledgers hosts of its own cluster, so
				// each node carries its proportional slice of its cluster's
				// budget, a death releases exactly that host's budget, and
				// a remote-cluster death never touches the local ledger.
				gates[k].UpsertHost(node.Info().ID.String(), gates[k].CapacityBps()*nodeShare[i]/clusterShare[k])
			}
			s.Engines[i].SetTenantGate(gates[k])
		}
		s.Gate = gates[0]
		if fo != nil {
			s.Gates = gates
		}
	}
	// Start gossip only after the control plane has quiesced: its loops
	// reschedule forever and would keep Run from returning. Membership is
	// seeded with the full roster, mirroring the already-converged overlay;
	// digests still have to disseminate through the protocol.
	if opts.EnableGossip {
		s.Gossip = make([]*gossip.Gossip, len(c.Nodes))
		var roster []overlay.NodeInfo
		for _, node := range c.Nodes {
			roster = append(roster, node.Info())
		}
		// A cluster's gate budget shrinks when one of its members dies:
		// its access-link contribution is gone, so fair shares must
		// re-settle. Every node's detector reports the same death; shrink
		// once, and only the dead node's own cluster — a remote-cluster
		// death must not release budget it never contributed locally.
		nodeByID := make(map[overlay.ID]int, len(c.Nodes))
		for i, node := range c.Nodes {
			nodeByID[node.Info().ID] = i
		}
		gateFor := func(i int) *tenant.Gate {
			if s.Gates != nil {
				return s.Gates[clusterOf(i)]
			}
			return s.Gate
		}
		deadSeen := make(map[overlay.ID]bool)
		onDead := func(info overlay.NodeInfo) {
			if s.Gate == nil || deadSeen[info.ID] {
				return
			}
			i, ok := nodeByID[info.ID]
			if !ok {
				return
			}
			deadSeen[info.ID] = true
			gate := gateFor(i)
			if gate.PerHostLedger() {
				// The ledger knows the dead host's exact budget; RemoveHost
				// is idempotent (and a no-op on gates that never ledgered
				// the host), so duplicate detections release it once.
				gate.RemoveHost(info.ID.String())
				return
			}
			k := clusterOf(i)
			if clusterShare[k] > 0 {
				gate.AddCapacity(-gate.CapacityBps() * nodeShare[i] / clusterShare[k])
				clusterShare[k] -= nodeShare[i]
				nodeShare[i] = 0
			}
		}
		// Border pairing: the j-th border of cluster k exchanges summaries
		// with the j-th border of every other cluster (clusters smaller
		// than the border count fall back to their first node).
		borderPeers := func(i int) []overlay.NodeInfo {
			k, rank := clusterOf(i), i/fo.Clusters
			if rank >= fo.BorderPeers {
				return nil
			}
			var peers []overlay.NodeInfo
			for kk := 0; kk < fo.Clusters; kk++ {
				if kk == k {
					continue
				}
				idx := kk + rank*fo.Clusters
				if idx >= opts.Nodes {
					idx = kk
				}
				if idx < opts.Nodes {
					peers = append(peers, c.Nodes[idx].Info())
				}
			}
			return peers
		}
		for i, node := range c.Nodes {
			gRng := rand.New(rand.NewSource(opts.Seed*9_999_991 + int64(i)))
			gcfg := opts.Gossip
			if fo != nil {
				gcfg.Cluster = ClusterName(clusterOf(i))
				gcfg.BoundaryBps = fo.BoundaryBps
				gcfg.BorderPeers = borderPeers(i)
			}
			g := gossip.New(node, c.Clock, gRng, gcfg)
			dir, eng, n := s.Dirs[i], s.Engines[i], node
			g.SetDigestFunc(func() gossip.Digest {
				return gossip.Digest{
					Report:   eng.Monitor.Report(c.Clock.Now()),
					Services: dir.LocalServices(),
				}
			})
			g.OnMemberDead(func(info overlay.NodeInfo) {
				n.RemovePeer(info.ID)
				eng.OnPeerDead(info.ID)
				onDead(info)
			})
			// Disseminated digests feed the control plane's drop-spike
			// trigger (a no-op until an AdaptationConfig arms it).
			g.OnDigest(func(info overlay.NodeInfo, rep monitor.Report) {
				eng.ObserveHostReport(info.ID, rep)
			})
			if fo != nil {
				// Summary TTL expiry is detected at the border; fan the
				// remote_candidate_lost signal out to the cluster's engines
				// (the in-process stand-in for an intra-cluster broadcast).
				k := clusterOf(i)
				g.OnSummaryLost(func(cluster string) {
					for j := k; j < opts.Nodes; j += fo.Clusters {
						s.Engines[j].OnRemoteClusterLost(cluster)
					}
				})
			}
			dir.SetView(g)
			eng.SetStatsProvider(g.ReportFor)
			g.Seed(roster)
			s.Gossip[i] = g
		}
		for _, g := range s.Gossip {
			g.Start()
		}
	}
	// Federation: one boundary ledger per cluster (the arbiter all the
	// cluster's solves reserve against), every inter-cluster link granted
	// its capacity on both endpoint ledgers, and a coordinator on every
	// node. Non-border nodes read remote summaries from their cluster's
	// first border — in-process in the simulator, a dissemination hop in a
	// live deployment.
	if fo != nil {
		s.Ledgers = make([]*federation.Ledger, fo.Clusters)
		for k := range s.Ledgers {
			s.Ledgers[k] = federation.NewLedger()
		}
		for a := 0; a < fo.Clusters; a++ {
			for b := a + 1; b < fo.Clusters; b++ {
				s.Ledgers[a].SetLink(ClusterName(a), ClusterName(b), fo.BoundaryBps)
				s.Ledgers[b].SetLink(ClusterName(a), ClusterName(b), fo.BoundaryBps)
			}
		}
		s.Federation = make([]*federation.Coordinator, opts.Nodes)
		for i, node := range c.Nodes {
			k := clusterOf(i)
			border := s.Gossip[k] // cluster k's first border is node k (k ≤ i < Nodes)
			coord := federation.New(federation.Config{
				Cluster:      ClusterName(k),
				Node:         node,
				Ledger:       s.Ledgers[k],
				Summaries:    border.Summaries,
				LocalSummary: s.Gossip[i].LocalSummary,
			})
			s.Engines[i].SetFederation(coord)
			s.Federation[i] = coord
		}
	}
	// Enable adaptation only after the deployment has quiesced: the check
	// loop reschedules forever.
	if opts.Adaptation != nil {
		for _, eng := range s.Engines {
			eng.EnableAdaptation(*opts.Adaptation)
		}
	}
	// Start background cross-traffic only after the control plane has
	// quiesced (the flows reschedule forever).
	if opts.BackgroundFlows > 0 {
		bps := opts.BackgroundBps
		if bps <= 0 {
			bps = 5e4
		}
		for i := 0; i < opts.BackgroundFlows; i++ {
			from := netsim.NodeID(rng.Intn(opts.Nodes))
			to := netsim.NodeID(rng.Intn(opts.Nodes))
			if from == to {
				to = netsim.NodeID((int(to) + 1) % opts.Nodes)
			}
			c.Net.AddBackgroundFlow(from, to, bps, 1250)
		}
	}
	return s
}

// Kill fails node i: its transport endpoint closes, so it neither receives
// nor sends anything from now on (fail-stop). Peers observe timeouts; with
// gossip enabled they detect the death through probing. The dead node's
// own protocol loops are stopped so the event queue stays lean.
func (s *System) Kill(i int) {
	_ = s.Endpoints[i].Close()
	if s.Gossip != nil && s.Gossip[i] != nil {
		s.Gossip[i].Stop()
	}
}
