package tenant

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rasc.dev/rasc/internal/spec"
)

// TestGateIncrementalEquivalence feeds the same randomized operation
// sequence — admissions across priority classes, demand changes, releases,
// capacity resizes — to an incremental gate and a full-recompute
// (DisableIncremental) gate, and requires their externally visible state
// to stay identical after every operation: the admission decision itself,
// every tenant's state and cap, the queue order, and the totals. Demands
// are integers and class weights powers of two, so the two paths' float
// arithmetic is exact and equality is bit-level. Run it with -race: the
// churn also exercises the coalescing-free notification path end to end.
func TestGateIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mk := func(disable bool) *Gate {
		return NewGate(Config{
			CapacityBps:        1e6,
			QueueCapacity:      32,
			MinShareFraction:   0.25,
			DisableIncremental: disable,
		})
	}
	inc, full := mk(false), mk(true)
	pris := []spec.Priority{spec.Critical, spec.Standard, spec.BestEffort}

	compare := func(step int, op string) {
		t.Helper()
		si, sf := inc.Snapshot(), full.Snapshot()
		if !reflect.DeepEqual(si, sf) {
			t.Fatalf("step %d (%s): snapshots diverged\nincremental: %+v\nfull:        %+v", step, op, si, sf)
		}
		ti, tf := inc.Totals(), full.Totals()
		// AllocatedBps is summed in map-iteration order, so the two gates
		// can differ in the last ulp even with bit-equal per-tenant caps
		// (the snapshot comparison above pins those). Compare it within
		// epsilon and everything else exactly.
		if math.Abs(ti.AllocatedBps-tf.AllocatedBps) > 1e-6*math.Max(1, tf.AllocatedBps) {
			t.Fatalf("step %d (%s): allocated diverged: inc %v, full %v", step, op, ti.AllocatedBps, tf.AllocatedBps)
		}
		ti.AllocatedBps, tf.AllocatedBps = 0, 0
		if !reflect.DeepEqual(ti, tf) {
			t.Fatalf("step %d (%s): totals diverged\nincremental: %+v\nfull:        %+v", step, op, ti, tf)
		}
	}

	for step := 0; step < 1500; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // admit: new app, or demand change on an existing one
			app := fmt.Sprintf("app-%03d", rng.Intn(80))
			pri := pris[rng.Intn(len(pris))]
			demand := float64(1 + rng.Intn(300000))
			di := inc.Admit(app, pri, demand, nil)
			df := full.Admit(app, pri, demand, nil)
			if di.State != df.State || di.New != df.New || di.CapBps != df.CapBps {
				t.Fatalf("step %d: admit(%s, %s, %v) decisions diverged: inc %+v, full %+v",
					step, app, pri, demand, di, df)
			}
			compare(step, "admit "+app)
		case 5, 6, 7: // release (promotes from the queue)
			app := fmt.Sprintf("app-%03d", rng.Intn(80))
			inc.Release(app)
			full.Release(app)
			compare(step, "release "+app)
		case 8: // grow or shrink capacity (shrink can preempt)
			c := float64(100000 + rng.Intn(2000000))
			inc.SetCapacity(c)
			full.SetCapacity(c)
			compare(step, fmt.Sprintf("capacity %v", c))
		default: // delta resize through AddCapacity
			d := float64(rng.Intn(200001) - 100000)
			if inc.CapacityBps()+d <= 0 {
				continue
			}
			inc.AddCapacity(d)
			full.AddCapacity(d)
			compare(step, fmt.Sprintf("capacity += %v", d))
		}
	}
	if tt := inc.Totals(); tt.Admitted == 0 {
		t.Fatal("churn never left tenants admitted; the test exercised nothing")
	}
}

// TestGateIncrementalNotificationsConsistent checks that every cap the
// incremental gate announces matches the cap it actually holds for that
// tenant once the dust settles — the fan-out may skip unchanged tenants
// but must never deliver a stale value last.
func TestGateIncrementalNotificationsConsistent(t *testing.T) {
	rec := newRecorder()
	g := NewGate(Config{CapacityBps: 10000, MinShareFraction: 0.1})
	g.Admit("a", spec.Standard, 8000, rec)
	g.Admit("b", spec.Standard, 8000, rec)
	g.Admit("c", spec.BestEffort, 8000, rec)
	g.SetCapacity(6000)
	g.SetCapacity(15000)
	rec.mu.Lock()
	caps := make(map[string]float64, len(rec.caps))
	for app, c := range rec.caps {
		caps[app] = c
	}
	rec.mu.Unlock()
	if len(caps) == 0 {
		t.Fatal("no cap notifications delivered under contention churn")
	}
	for app, announced := range caps {
		got, ok := g.CapBps(app)
		if !ok {
			continue // preempted after the notification: nothing to compare
		}
		if math.Abs(got-announced) > 1e-6 {
			t.Errorf("%s: last announced cap %v, gate holds %v", app, announced, got)
		}
	}
}
