package tenant

import (
	"testing"

	"rasc.dev/rasc/internal/spec"
)

// TestCapRequestNoCopyFastPath pins the no-copy fast path: when the cap
// covers the aggregate rate — or is so close that every floored rate
// comes out unchanged — CapRequest returns the request without cloning
// its substreams, and allocates nothing.
func TestCapRequestNoCopyFastPath(t *testing.T) {
	req := spec.Request{
		ID:        "app",
		UnitBytes: 1250, // 10000 bits/unit
		Substreams: []spec.Substream{
			{Services: []string{"s1"}, Rate: 30},
			{Services: []string{"s2"}, Rate: 10},
		},
	}
	demand := req.BitsPerSecond(req.TotalRate()) // 400000 bps

	for name, capBps := range map[string]float64{
		"surplus":        2 * demand,
		"exact":          demand,
		"zero-means-off": 0,
	} {
		got := CapRequest(req, capBps)
		if &got.Substreams[0] != &req.Substreams[0] {
			t.Errorf("%s (cap %v): substreams were cloned on the fast path", name, capBps)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			CapRequest(req, capBps)
		}); allocs != 0 {
			t.Errorf("%s (cap %v): %v allocs/op, want 0", name, capBps, allocs)
		}
	}

	// A binding cap whose floors are all clamped back to the 1-unit
	// minimum changes nothing either — no clone, no allocation.
	tiny := spec.Request{
		ID:        "tiny",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"s1"}, Rate: 1},
			{Services: []string{"s2"}, Rate: 1},
		},
	}
	got := CapRequest(tiny, 1)
	if &got.Substreams[0] != &tiny.Substreams[0] {
		t.Error("clamped-to-floor request was cloned")
	}
	if allocs := testing.AllocsPerRun(100, func() { CapRequest(tiny, 1) }); allocs != 0 {
		t.Errorf("clamped-to-floor: %v allocs/op, want 0", allocs)
	}

	// A genuinely binding cap still deep-copies and leaves the input alone.
	capped := CapRequest(req, demand/2)
	if capped.Substreams[0].Rate != 15 || req.Substreams[0].Rate != 30 {
		t.Fatalf("binding cap: got %d, input %d", capped.Substreams[0].Rate, req.Substreams[0].Rate)
	}
}
