package core

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the execution graph in Graphviz dot format: one subgraph
// per substream, nodes labelled with their service, host and assigned
// rate, edges labelled with the rates they carry. Feed the output to
// `dot -Tsvg` to visualize a composition.
func (g *ExecutionGraph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Request.ID)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")
	fmt.Fprintf(&b, "  source [label=\"source\\n%s\", shape=ellipse];\n", g.Source.Addr)
	fmt.Fprintf(&b, "  dest [label=\"destination\\n%s\", shape=ellipse];\n", g.Dest.Addr)

	nodeID := func(substream, stage int, host string) string {
		return fmt.Sprintf("n_%d_%d_%s", substream, stage, sanitize(host))
	}
	// Placement nodes, grouped by substream.
	placements := append([]Placement(nil), g.Placements...)
	sort.Slice(placements, func(i, j int) bool {
		a, c := placements[i], placements[j]
		if a.Substream != c.Substream {
			return a.Substream < c.Substream
		}
		if a.Stage != c.Stage {
			return a.Stage < c.Stage
		}
		return a.Host.ID.Cmp(c.Host.ID) < 0
	})
	current := -1
	for _, p := range placements {
		if p.Substream != current {
			if current >= 0 {
				b.WriteString("  }\n")
			}
			current = p.Substream
			fmt.Fprintf(&b, "  subgraph cluster_%d {\n", current)
			fmt.Fprintf(&b, "    label=\"substream %d\";\n", current)
		}
		fmt.Fprintf(&b, "    %s [label=\"%s\\n%s\\n%.0f u/s\"];\n",
			nodeID(p.Substream, p.Stage, string(p.Host.Addr)), p.Service, p.Host.Addr, p.Rate)
	}
	if current >= 0 {
		b.WriteString("  }\n")
	}
	// Edges.
	for _, e := range g.Edges {
		from := "source"
		if e.FromStage >= 0 {
			from = nodeID(e.Substream, e.FromStage, string(e.From.Addr))
		}
		to := "dest"
		if e.ToStage < len(g.Request.Substreams[e.Substream].Services) {
			to = nodeID(e.Substream, e.ToStage, string(e.To.Addr))
		}
		fmt.Fprintf(&b, "  %s -> %s [label=\"%.0f u/s\", fontsize=9];\n", from, to, e.Rate)
	}
	b.WriteString("}\n")
	return b.String()
}

// sanitize turns an address into a dot-safe identifier fragment.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
