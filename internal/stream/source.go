package stream

import (
	"time"

	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/trace"
)

// traceEmitKind aliases the emit kind for the source loop.
const traceEmitKind = trace.KindEmit

// source emits a substream's data units at the requested rate, spreading
// them across the stage-0 component instances according to the composed
// split. A bursty source varies unit sizes (VBR) while keeping the unit
// rate constant.
type source struct {
	req        string
	substream  int
	rate       float64
	unitBytes  int
	burstiness float64
	split      *splitter
	seq        int64
	// Emitted counts units sent so far; EmittedBytes their total size.
	Emitted      int64
	EmittedBytes int64
	stopped      bool
	flow         *flowCounters
	// credit accumulates fractional units between burst-mode ticks.
	credit float64
}

// retarget swaps the source's stage-0 split for a re-composed one. The
// emission loop keeps its cadence and sequence numbers — only the
// downstream targets change, which is what makes incremental reallocation
// seamless at the origin.
func (s *source) retarget(outs []outSpec) { s.split = newSplitter(outs) }

// Emitted returns the number of units a source has sent (0 for nil).
func emittedOf(s *source) int64 {
	if s == nil {
		return 0
	}
	return s.Emitted
}

// startSource installs and starts a source for one substream of a request
// originated at this engine.
func (e *Engine) startSource(req string, substream int, ss spec.Substream, unitBytes int, outs []outSpec) *source {
	s := &source{
		req:        req,
		substream:  substream,
		rate:       float64(ss.Rate),
		unitBytes:  unitBytes,
		burstiness: ss.Burstiness,
		split:      newSplitter(outs),
	}
	s.flow = e.flowFor(req, substream)
	e.sources[sinkKey(req, substream)] = s
	period := time.Duration(float64(time.Second) / s.rate)
	if e.cfg.DataPlane.batching() {
		e.startBurstSource(s, period)
		return s
	}
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		out := s.split.next()
		if out != nil {
			m := e.emitUnit(s, out)
			if err := e.sendUnit(out.To, m); err != nil {
				// The origin's own uplink is congested: record the
				// drop so the node's ratio reflects it.
				e.Monitor.ObserveDrop("source:"+sinkKey(s.req, s.substream), "source")
				s.flow.droppedUnits++
				s.flow.droppedBytes += int64(m.Size)
			}
		}
		e.clk.After(period, tick)
	}
	// Desynchronize sources slightly so simultaneous requests do not
	// beat in lockstep.
	e.clk.After(time.Duration(e.rng.Int63n(int64(period))), tick)
	return s
}

// emitUnit builds and accounts one source emission (size jitter, sequence,
// counters, trace) without sending it.
func (e *Engine) emitUnit(s *source, out *outSpec) dataMsg {
	size := s.unitBytes
	if s.burstiness > 0 {
		f := 1 + s.burstiness*(2*e.rng.Float64()-1)
		size = int(float64(s.unitBytes) * f)
		if size < 1 {
			size = 1
		}
	}
	m := dataMsg{
		Req:       s.req,
		Substream: s.substream,
		Stage:     out.ToStage,
		Seq:       s.seq,
		Created:   e.clk.Now(),
		Size:      size,
	}
	s.seq++
	s.Emitted++
	s.EmittedBytes += int64(size)
	s.flow.emittedUnits++
	s.flow.emittedBytes += int64(size)
	telEmitted.Inc()
	e.traceEvent(traceEmitKind, m, -1, "")
	return m
}

// startBurstSource runs the batched-data-plane emission loop: instead of
// one timer event per unit, the source ticks at most once per flush
// interval, accrues rate·Δt of unit credit, and emits the whole burst into
// the per-destination batches. High-rate sources thus cost a few timer
// events per flush interval rather than thousands per second, while the
// long-run emission rate is identical to the legacy per-period loop.
func (e *Engine) startBurstSource(s *source, period time.Duration) {
	tickEvery := period
	if fi := e.cfg.DataPlane.FlushInterval; tickEvery < fi {
		tickEvery = fi
	}
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		s.credit += s.rate * tickEvery.Seconds()
		for ; s.credit >= 1; s.credit-- {
			out := s.split.next()
			if out == nil {
				continue
			}
			m := e.emitUnit(s, out)
			e.batchUnit(out.To, pendingUnit{
				msg:       m,
				fromStage: -1,
				key:       "source:" + sinkKey(s.req, s.substream),
				service:   "source",
				isSource:  true,
				flow:      s.flow,
			})
		}
		e.clk.After(tickEvery, tick)
	}
	e.clk.After(time.Duration(e.rng.Int63n(int64(tickEvery))), tick)
}
