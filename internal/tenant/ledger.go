package tenant

import "sort"

// Per-host capacity ledger (Config.PerHostLedger): instead of one
// aggregate cluster scalar, the gate tracks a budget per host, fed from
// gossip membership and monitoring digests. Admission feasibility then
// answers "is there a host with headroom for this tenant's guaranteed
// floor" — an aggregate with headroom spread thin across saturated hosts
// is not placeable — and a host's death releases exactly that host's
// budget instead of an estimated aggregate decrement.

// hostState is one host's ledger row.
type hostState struct {
	capacityBps  float64
	committedBps float64
}

// HostBudget is one host's externally visible ledger row, served by
// /debug/rasc/tenants.
type HostBudget struct {
	Host        string  `json:"host"`
	CapacityBps float64 `json:"capacityBps"`
	// CommittedBps is the placed rate currently charged against the
	// host by admitted tenants (via SetPlacements).
	CommittedBps float64 `json:"committedBps"`
}

// PerHostLedger reports whether the gate was configured with per-host
// accounting (immutable after NewGate, so no lock needed).
func (g *Gate) PerHostLedger() bool { return g.cfg.PerHostLedger }

// UpsertHost registers a host budget (bits/sec) or rebases an existing
// one — the path a gossip join or monitoring digest takes. The aggregate
// budget becomes the sum of host budgets, and allocations re-settle.
func (g *Gate) UpsertHost(host string, capacityBps float64) {
	if capacityBps < 0 {
		capacityBps = 0
	}
	g.mu.Lock()
	if g.hosts == nil {
		g.hosts = make(map[string]*hostState)
	}
	h, ok := g.hosts[host]
	if !ok {
		h = &hostState{}
		g.hosts[host] = h
	}
	if ok && h.capacityBps == capacityBps {
		g.mu.Unlock()
		return // digest refresh with an unchanged budget: no re-settle
	}
	g.hostCapSum += capacityBps - h.capacityBps
	h.capacityBps = capacityBps
	g.capacity = g.hostCapSum
	n := &notifs{}
	g.rebalanceDispatchLocked(n, nil)
	g.refreshGaugesLocked()
	g.mu.Unlock()
	n.deliver()
}

// RemoveHost drops a host from the ledger — the gossip death path —
// releasing exactly its budget. Removing an unknown (or already removed)
// host is a no-op, so duplicate death notices release the budget exactly
// once.
func (g *Gate) RemoveHost(host string) {
	g.mu.Lock()
	h, ok := g.hosts[host]
	if !ok {
		g.mu.Unlock()
		return
	}
	delete(g.hosts, host)
	g.hostCapSum -= h.capacityBps
	if g.hostCapSum < 0 {
		g.hostCapSum = 0
	}
	g.capacity = g.hostCapSum
	n := &notifs{}
	g.rebalanceDispatchLocked(n, nil)
	g.refreshGaugesLocked()
	g.mu.Unlock()
	n.deliver()
}

// SetPlacements charges an admitted tenant's placed rate (host →
// bits/sec) against the ledger, replacing any previous charge. The gate
// takes ownership of the map. Placements on hosts the ledger does not
// track (or reported for tenants it no longer holds) are ignored; calls
// on a gate without a per-host ledger are no-ops.
func (g *Gate) SetPlacements(app string, perHost map[string]float64) {
	if !g.cfg.PerHostLedger {
		return
	}
	g.mu.Lock()
	t, ok := g.admitted[app]
	if !ok {
		g.mu.Unlock()
		return
	}
	g.uncommitPlacementsLocked(t)
	t.placedBps = perHost
	for host, bps := range perHost {
		if h := g.hosts[host]; h != nil {
			h.committedBps += bps
		}
	}
	g.mu.Unlock()
}

// uncommitPlacementsLocked releases a tenant's committed host budget
// (hosts that died since the charge are skipped — their ledger rows are
// gone).
func (g *Gate) uncommitPlacementsLocked(t *tenantState) {
	for host, bps := range t.placedBps {
		if h := g.hosts[host]; h != nil {
			h.committedBps -= bps
			if h.committedBps < 0 {
				h.committedBps = 0
			}
		}
	}
	t.placedBps = nil
}

// hostProbeLocked is the per-host feasibility probe run before an
// admission: with a ledger armed, some host's uncommitted budget must
// cover the candidate's guaranteed floor.
func (g *Gate) hostProbeLocked(demandBps float64) (string, bool) {
	if !g.cfg.PerHostLedger || len(g.hosts) == 0 {
		return "", true
	}
	need := g.cfg.MinShareFraction * demandBps
	for _, h := range g.hosts {
		if h.capacityBps-h.committedBps+1e-9 >= need {
			return "", true
		}
	}
	return "no host with placement headroom", false
}

// Hosts returns the ledger rows sorted by host id (empty without a
// per-host ledger).
func (g *Gate) Hosts() []HostBudget {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.hosts) == 0 {
		return nil
	}
	out := make([]HostBudget, 0, len(g.hosts))
	for host, h := range g.hosts {
		out = append(out, HostBudget{Host: host, CapacityBps: h.capacityBps, CommittedBps: h.committedBps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}
