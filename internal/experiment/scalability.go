package experiment

import (
	"runtime"
	"sync"
	"time"

	"rasc.dev/rasc/internal/metrics"
)

// ScalabilityConfig parameterizes the deployment-size sweep: the same
// workload intensity per node, measured at growing overlay sizes.
type ScalabilityConfig struct {
	// NodeCounts to sweep (default 16, 32, 64).
	NodeCounts []int
	// Seeds to average (default 1, 2).
	Seeds []int64
	// Rate in units/sec per request (default 10 = 100 Kbps).
	Rate int
	// RequestsPerNode scales the workload with the deployment
	// (default 0.5: 16 requests on 32 nodes).
	RequestsPerNode float64
	// Composer (default "mincost").
	Composer string
	// Parallelism bounds concurrent (node-count, seed) runs; 0 selects
	// runtime.NumCPU(). Aggregates are accumulated in sweep order, so
	// the table is identical at any setting.
	Parallelism int
	// Progress receives one line per run when set.
	Progress func(string)
}

func (c *ScalabilityConfig) defaults() {
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{16, 32, 64}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2}
	}
	if c.Rate == 0 {
		c.Rate = 10
	}
	if c.RequestsPerNode == 0 {
		c.RequestsPerNode = 0.5
	}
	if c.Composer == "" {
		c.Composer = "mincost"
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
}

// RunScalability sweeps deployment sizes and reports, per size: requests
// composed, delivered fraction, and the mean virtual composition latency
// (discovery + monitoring + solving + instantiation). Composition latency
// should grow slowly — discovery is O(log N) overlay hops — while
// delivery quality holds.
func RunScalability(cfg ScalabilityConfig) (*metrics.Table, error) {
	cfg.defaults()
	t := metrics.NewTable(
		"Scalability: deployment-size sweep ("+cfg.Composer+")",
		"nodes", "per-column", cfg.NodeCounts)
	type cell struct {
		nodes, requests int
		seed            int64
	}
	cells := make([]cell, 0, len(cfg.NodeCounts)*len(cfg.Seeds))
	for _, n := range cfg.NodeCounts {
		requests := int(float64(n) * cfg.RequestsPerNode)
		if requests < 1 {
			requests = 1
		}
		for _, seed := range cfg.Seeds {
			cells = append(cells, cell{n, requests, seed})
		}
	}
	runs := make([]RunStats, len(cells))
	var progressMu sync.Mutex
	err := ParallelFor(len(cells), cfg.Parallelism, func(i int) error {
		c := cells[i]
		base := Config{
			Nodes:      c.nodes,
			Requests:   c.requests,
			MeasureFor: 20 * time.Second,
		}
		rs, err := RunOne(base, cfg.Composer, cfg.Rate, c.seed)
		if err != nil {
			return err
		}
		runs[i] = rs
		if cfg.Progress != nil {
			progressMu.Lock()
			cfg.Progress(
				"nodes=" + itoa(c.nodes) + " seed=" + itoa(int(c.seed)) +
					" composed=" + itoa(rs.Composed) + "/" + itoa(c.requests))
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Aggregate in sweep order so floating-point accumulation — and hence
	// the table — is independent of the worker interleaving.
	for i := 0; i < len(cells); {
		n := cells[i].nodes
		var composed, delivered, composeMs metrics.Welford
		for ; i < len(cells) && cells[i].nodes == n; i++ {
			composed.Add(float64(runs[i].Composed))
			delivered.Add(runs[i].DeliveredFraction())
			composeMs.Add(runs[i].MeanComposeLatencyMs())
		}
		t.Set("composed", n, composed.Mean())
		t.Set("delivered_frac", n, delivered.Mean())
		t.Set("compose_ms", n, composeMs.Mean())
	}
	return t, nil
}

// itoa is a tiny local integer formatter (avoids fmt in the hot path).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
