package sched

import (
	"math/rand"
	"testing"
	"time"
)

func unit(key string, deadline, exec time.Duration) *Unit {
	return &Unit{ComponentKey: key, Deadline: deadline, ExecTime: exec}
}

func TestLaxity(t *testing.T) {
	u := unit("c", 100*time.Millisecond, 20*time.Millisecond)
	if got := u.Laxity(30 * time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("Laxity = %v, want 50ms", got)
	}
	if got := u.Laxity(90 * time.Millisecond); got != -10*time.Millisecond {
		t.Fatalf("Laxity = %v, want -10ms", got)
	}
}

func TestLLFPicksSmallestLaxity(t *testing.T) {
	q := NewLLF(0)
	a := unit("a", 100*time.Millisecond, 10*time.Millisecond) // key 90
	b := unit("b", 50*time.Millisecond, 5*time.Millisecond)   // key 45
	c := unit("c", 200*time.Millisecond, 40*time.Millisecond) // key 160
	q.Push(a)
	q.Push(b)
	q.Push(c)
	got, dropped := q.Next(0)
	if got != b || len(dropped) != 0 {
		t.Fatalf("Next = %v dropped %v, want b", got, dropped)
	}
	got, _ = q.Next(0)
	if got != a {
		t.Fatalf("second Next = %v, want a", got)
	}
	got, _ = q.Next(0)
	if got != c {
		t.Fatalf("third Next = %v, want c", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestLLFDropsNegativeLaxity(t *testing.T) {
	q := NewLLF(0)
	late := unit("late", 10*time.Millisecond, 5*time.Millisecond) // key 5
	ok := unit("ok", 100*time.Millisecond, 5*time.Millisecond)    // key 95
	q.Push(late)
	q.Push(ok)
	got, dropped := q.Next(50 * time.Millisecond)
	if got != ok {
		t.Fatalf("Next = %v, want ok", got)
	}
	if len(dropped) != 1 || dropped[0] != late {
		t.Fatalf("dropped = %v, want [late]", dropped)
	}
}

func TestLLFAllLate(t *testing.T) {
	q := NewLLF(0)
	q.Push(unit("a", time.Millisecond, time.Millisecond))
	q.Push(unit("b", 2*time.Millisecond, time.Millisecond))
	got, dropped := q.Next(time.Second)
	if got != nil {
		t.Fatalf("Next = %v, want nil", got)
	}
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(dropped))
	}
	if q.Len() != 0 {
		t.Fatal("late units still queued")
	}
}

func TestCapacityOverflow(t *testing.T) {
	for _, mk := range []func(int) Policy{NewLLF, NewEDF, NewFIFO} {
		q := mk(2)
		if !q.Push(unit("a", time.Second, 0)) || !q.Push(unit("b", time.Second, 0)) {
			t.Fatal("push into non-full queue failed")
		}
		if q.Push(unit("c", time.Second, 0)) {
			t.Fatalf("%s: push into full queue succeeded", q.Name())
		}
		if q.Len() != 2 {
			t.Fatalf("%s: Len = %d", q.Name(), q.Len())
		}
	}
}

func TestEmptyNext(t *testing.T) {
	for _, mk := range []func(int) Policy{NewLLF, NewEDF, NewFIFO} {
		q := mk(0)
		got, dropped := q.Next(0)
		if got != nil || dropped != nil {
			t.Fatalf("%s: empty Next returned %v, %v", q.Name(), got, dropped)
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO(0)
	a := unit("a", time.Hour, 0)
	b := unit("b", time.Minute, 0) // earlier deadline, but arrived second
	q.Push(a)
	q.Push(b)
	got, _ := q.Next(0)
	if got != a {
		t.Fatal("FIFO must run in arrival order")
	}
}

func TestFIFODropsLate(t *testing.T) {
	q := NewFIFO(0)
	q.Push(unit("late", time.Millisecond, 0))
	fresh := unit("fresh", time.Hour, 0)
	q.Push(fresh)
	got, dropped := q.Next(time.Second)
	if got != fresh || len(dropped) != 1 {
		t.Fatalf("got %v dropped %v", got, dropped)
	}
}

func TestEDFOrder(t *testing.T) {
	q := NewEDF(0)
	a := unit("a", 100*time.Millisecond, 90*time.Millisecond) // laxity key 10
	b := unit("b", 50*time.Millisecond, 1*time.Millisecond)   // laxity key 49
	q.Push(a)
	q.Push(b)
	// EDF picks b (deadline 50 < 100) even though LLF would pick a.
	got, _ := q.Next(0)
	if got != b {
		t.Fatal("EDF must order by absolute deadline")
	}
}

func TestTieBreakByArrival(t *testing.T) {
	q := NewLLF(0)
	a := unit("a", time.Second, 0)
	a.Enqueued = 1
	b := unit("b", time.Second, 0)
	b.Enqueued = 2
	q.Push(b)
	q.Push(a)
	got, _ := q.Next(0)
	if got != a {
		t.Fatal("equal laxity must break ties by arrival time")
	}
}

func TestNewPolicyByName(t *testing.T) {
	if NewPolicy("fifo", 0).Name() != "fifo" {
		t.Fatal("fifo")
	}
	if NewPolicy("edf", 0).Name() != "edf" {
		t.Fatal("edf")
	}
	if NewPolicy("llf", 0).Name() != "llf" {
		t.Fatal("llf")
	}
	if NewPolicy("unknown", 0).Name() != "llf" {
		t.Fatal("unknown must default to llf")
	}
}

// Property: LLF always returns units in non-decreasing laxity order when no
// time passes between calls, and never returns a unit with negative laxity.
func TestLLFOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		q := NewLLF(0)
		n := rng.Intn(40) + 1
		for i := 0; i < n; i++ {
			q.Push(unit("c", time.Duration(rng.Intn(1000))*time.Millisecond,
				time.Duration(rng.Intn(100))*time.Millisecond))
		}
		now := time.Duration(rng.Intn(500)) * time.Millisecond
		var last time.Duration = -1 << 62
		for {
			u, _ := q.Next(now)
			if u == nil {
				break
			}
			lax := u.Laxity(now)
			if lax < 0 {
				t.Fatal("returned unit with negative laxity")
			}
			if lax < last {
				t.Fatal("laxity order violated")
			}
			last = lax
		}
	}
}
