package tenant

import (
	"fmt"
	"testing"

	"rasc.dev/rasc/internal/spec"
)

// BenchmarkAdmission measures the admission decision latency with 1k
// concurrent tenants already holding allocations — the cost a submission
// pays at the gate before any composition work. Each iteration admits and
// releases one extra tenant, exercising the water-filling recompute over
// the full population (the worst case: every decision re-solves fairness).
func BenchmarkAdmission(b *testing.B) {
	g := NewGate(Config{CapacityBps: 1e9, QueueCapacity: 64})
	pris := []spec.Priority{spec.Critical, spec.Standard, spec.BestEffort}
	for i := 0; i < 1000; i++ {
		app := fmt.Sprintf("app-%04d", i)
		if dec := g.Admit(app, pris[i%len(pris)], 1e6, nil); dec.State != StateAdmitted {
			b.Fatalf("seed tenant %s not admitted: %+v", app, dec)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := g.Admit("probe", spec.Standard, 1e6, nil)
		if dec.State != StateAdmitted {
			b.Fatalf("probe not admitted: %+v", dec)
		}
		g.Release("probe")
	}
}

// BenchmarkFairShares isolates the water-filling solve at 1k tenants.
func BenchmarkFairShares(b *testing.B) {
	demands := make([]Demand, 1000)
	for i := range demands {
		demands[i] = Demand{
			App:    fmt.Sprintf("app-%04d", i),
			Bps:    float64(1+i%17) * 1e5,
			Weight: []float64{1, 2, 4}[i%3],
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FairShares(demands, 5e8)
	}
}
