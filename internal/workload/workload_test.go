package workload

import (
	"testing"

	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
)

func TestGeneratorProducesValidRequests(t *testing.T) {
	g := NewGenerator(Config{Services: services.Standard().Names()}, 1)
	for i := 0; i < 200; i++ {
		req := g.Next()
		if err := req.Validate(); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		n := 0
		total := 0
		seen := map[string]bool{}
		for _, ss := range req.Substreams {
			n += len(ss.Services)
			total += ss.Rate
			for _, svc := range ss.Services {
				if seen[svc] {
					t.Fatalf("request %d repeats service %q", i, svc)
				}
				seen[svc] = true
			}
		}
		found := false
		for _, r := range []int{5, 10, 15, 20} {
			if total == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("request %d total rate %d outside 50-200 Kbps choices", i, total)
		}
		if n < 2 || n > 5 {
			t.Fatalf("request %d has %d services, want 2-5", i, n)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	mk := func() []string {
		g := NewGenerator(Config{Services: services.Standard().Names()}, 42)
		var ids []string
		for i := 0; i < 10; i++ {
			req := g.Next()
			ids = append(ids, req.ID+":"+req.Substreams[0].Services[0])
		}
		return ids
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestGeneratorFixedRateSplitsAcrossSubstreams(t *testing.T) {
	g := NewGenerator(Config{Services: services.Standard().Names(), RateUnits: 15}, 3)
	for i := 0; i < 50; i++ {
		total := 0
		for _, ss := range g.Next().Substreams {
			if ss.Rate <= 0 {
				t.Fatalf("non-positive substream rate %d", ss.Rate)
			}
			total += ss.Rate
		}
		if total != 15 {
			t.Fatalf("total rate = %d, want fixed 15", total)
		}
	}
}

func TestGeneratorSingleSubstream(t *testing.T) {
	g := NewGenerator(Config{Services: services.Standard().Names(), MaxSubstreams: 1}, 4)
	for i := 0; i < 50; i++ {
		if n := len(g.Next().Substreams); n != 1 {
			t.Fatalf("substreams = %d, want 1", n)
		}
	}
}

func TestBatchIDsUnique(t *testing.T) {
	g := NewGenerator(Config{Services: services.Standard().Names()}, 5)
	batch := g.Batch(30)
	seen := map[string]bool{}
	for _, r := range batch {
		if seen[r.ID] {
			t.Fatalf("duplicate request ID %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestGeneratorPanicsWithoutServices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(Config{}, 1)
}

func TestGeneratorPriorityMix(t *testing.T) {
	g := NewGenerator(Config{
		Services:   services.Standard().Names(),
		Priorities: PriorityMix{Critical: 1, Standard: 2, BestEffort: 1},
	}, 7)
	counts := map[spec.Priority]int{}
	for i := 0; i < 400; i++ {
		req := g.Next()
		if err := req.Validate(); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		counts[req.Priority]++
	}
	// Every class appears, roughly proportional to its weight.
	if counts[spec.Critical] == 0 || counts[spec.Standard] == 0 || counts[spec.BestEffort] == 0 {
		t.Fatalf("class missing from mix: %v", counts)
	}
	if counts[spec.Standard] < counts[spec.Critical] {
		t.Fatalf("standard (weight 2) should dominate critical (weight 1): %v", counts)
	}
	// Zero mix stays Standard-only (backward compatible).
	g2 := NewGenerator(Config{Services: services.Standard().Names()}, 7)
	for i := 0; i < 50; i++ {
		if p := g2.Next().Priority; p != spec.Standard {
			t.Fatalf("zero mix produced %v", p)
		}
	}
}

func TestFlashCrowd(t *testing.T) {
	g := NewGenerator(Config{Services: services.Standard().Names()}, 3)
	g.Next() // advance numbering so the burst continues it
	burst := g.FlashCrowd(50, "svc-3", spec.BestEffort)
	if len(burst) != 50 {
		t.Fatalf("burst size %d", len(burst))
	}
	ids := map[string]bool{}
	for i, req := range burst {
		if err := req.Validate(); err != nil {
			t.Fatalf("burst request %d invalid: %v", i, err)
		}
		if len(req.Substreams) != 1 || len(req.Substreams[0].Services) != 1 ||
			req.Substreams[0].Services[0] != "svc-3" {
			t.Fatalf("burst request %d not a single chain on the hot service: %+v", i, req.Substreams)
		}
		if req.Priority != spec.BestEffort {
			t.Fatalf("burst request %d priority %v", i, req.Priority)
		}
		if ids[req.ID] {
			t.Fatalf("duplicate burst ID %s", req.ID)
		}
		ids[req.ID] = true
	}
}
