package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"rasc.dev/rasc/internal/control"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/telemetry"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/transport"
)

// AdminServer is the node's operational side port: /metrics (Prometheus
// text format), /healthz (overlay membership + listener liveness) and
// /debug/pprof. It runs on its own listener so operational traffic never
// competes with the protocol port.
type AdminServer struct {
	ln   net.Listener
	srv  *http.Server
	node *Node
}

// ServeAdmin starts the admin endpoint on addr ("host:port", port 0 picks
// a free port). Close the returned server when done; it is also shut down
// by its own goroutine exiting when the listener closes.
func (n *Node) ServeAdmin(addr string) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: admin listen %s: %w", addr, err)
	}
	a := &AdminServer{ln: ln, node: n}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.Handle("/debug/rasc/decisions", DecisionsHandler(n.Journal))
	mux.Handle("/debug/rasc/composition", CompositionHandler(func() []stream.AppComposition {
		var snap []stream.AppComposition
		n.DoSync(func() { snap = n.Engine.CompositionSnapshot() })
		return snap
	}))
	mux.Handle("/debug/rasc/trace", TraceHandler(func() *trace.Buffer { return n.Trace }))
	mux.Handle("/debug/rasc/dataplane", DataPlaneHandler(func() stream.DataPlaneStatus {
		var st stream.DataPlaneStatus
		n.DoSync(func() { st = n.Engine.DataPlaneStatus() })
		return st
	}))
	mux.Handle("/debug/rasc/tenants", TenantsHandler(func() *tenant.Gate { return n.Gate }))
	mux.Handle("/debug/rasc/clusters", ClustersHandler(func() *ClustersStatus {
		var st *ClustersStatus
		n.DoSync(func() {
			if n.Federation == nil {
				return
			}
			st = &ClustersStatus{
				Cluster:  n.Federation.Cluster(),
				Local:    n.Gossip.LocalSummary(),
				Remotes:  n.Gossip.Summaries(),
				Links:    n.Federation.Ledger().Usage(),
				Handoffs: n.Federation.Handoffs(),
				Stats:    n.Federation.Stats(),
			}
		})
		return st
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the admin endpoint's bound address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin listener down.
func (a *AdminServer) Close() error { return a.srv.Close() }

// handleMetrics refreshes scrape-time gauges on the actor loop, then
// writes the process registry.
func (a *AdminServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	a.node.DoSync(func() {
		a.node.Engine.ExportTelemetry()
		telActiveRequests.Set(float64(a.node.Engine.ActiveRequests()))
	})
	telemetry.Default().Handler().ServeHTTP(w, r)
}

// healthStatus is the /healthz response body.
type healthStatus struct {
	Joined   bool `json:"joined"`
	Listener bool `json:"listener"`
	// Peers is the number of overlay nodes this node currently knows.
	Peers int `json:"peers"`
	// Gossip summarizes the membership view (alive/suspect/dead counts
	// and the stalest held digest age); absent when gossip is disabled.
	Gossip *gossip.Summary `json:"gossip,omitempty"`
	// Transport summarizes the resilient pipeline's circuit breakers;
	// absent when resilience is disabled.
	Transport *transportHealth `json:"transport,omitempty"`
	// Control summarizes the adaptation control plane: per-application
	// last decision and gate posture. Absent until the engine has built a
	// controller (i.e. before adaptation is enabled or any event fires).
	Control *controlHealth `json:"control,omitempty"`
}

// controlHealth is the /healthz control-plane block.
type controlHealth struct {
	// Decisions counts adaptation decisions ever completed on this node.
	Decisions int64 `json:"decisions"`
	// Inflight is how many reallocations are currently running.
	Inflight int          `json:"inflight"`
	Apps     []appControl `json:"apps,omitempty"`
}

// appControl is one application's control-plane posture.
type appControl struct {
	App string `json:"app"`
	// LastTrigger/LastMode/LastOutcome describe the most recent completed
	// decision retained for the application; Converged reports whether
	// its delivered rate has recovered since.
	LastTrigger string `json:"lastTrigger,omitempty"`
	LastMode    string `json:"lastMode,omitempty"`
	LastOutcome string `json:"lastOutcome,omitempty"`
	Converged   bool   `json:"converged,omitempty"`
	// Inflight/Pending/Backoff/CooldownRemaining mirror the controller's
	// gate state: a reallocation running now, merged work waiting on a
	// timer or slot, the armed retry backoff, and the remaining
	// post-success cooldown.
	Inflight          bool          `json:"inflight,omitempty"`
	Pending           bool          `json:"pending,omitempty"`
	Backoff           time.Duration `json:"backoff,omitempty"`
	CooldownRemaining time.Duration `json:"cooldownRemaining,omitempty"`
}

// buildControlHealth merges the controller's live gate state with the
// journal's last decision per application. It must run on the actor loop
// (AppStatuses reads controller state).
func buildControlHealth(ctl *control.Controller, j *trace.Journal) *controlHealth {
	ch := &controlHealth{}
	byApp := make(map[string]*appControl)
	ordered := []string{}
	get := func(app string) *appControl {
		ac, ok := byApp[app]
		if !ok {
			ac = &appControl{App: app}
			byApp[app] = ac
			ordered = append(ordered, app)
		}
		return ac
	}
	if ctl != nil {
		for _, st := range ctl.AppStatuses() {
			ac := get(st.App)
			ac.Inflight = st.Inflight
			ac.Pending = st.Pending
			ac.Backoff = st.Backoff
			ac.CooldownRemaining = st.CooldownRemaining
			if st.Inflight {
				ch.Inflight++
			}
		}
	}
	if j != nil {
		ch.Decisions = j.Total()
		last := j.LastByApp()
		apps := make([]string, 0, len(last))
		for app := range last {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		for _, app := range apps {
			d := last[app]
			ac := get(app)
			ac.LastTrigger = d.Trigger
			ac.LastMode = d.Mode
			ac.LastOutcome = d.Outcome
			ac.Converged = d.Converged
		}
	}
	sort.Strings(ordered)
	for _, app := range ordered {
		ch.Apps = append(ch.Apps, *byApp[app])
	}
	return ch
}

// transportHealth is the /healthz breaker summary: how many peers the
// pipeline tracks and which of them the breaker currently holds not-closed.
type transportHealth struct {
	Peers     int      `json:"peers"`
	SickPeers []string `json:"sickPeers,omitempty"`
}

// handleHealthz reports 200 once the node has joined the overlay and its
// protocol listener accepts connections, 503 otherwise.
func (a *AdminServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var st healthStatus
	a.node.DoSync(func() {
		st.Joined = a.node.Overlay.Joined()
		st.Peers = a.node.Overlay.NumKnown()
		if a.node.Gossip != nil {
			s := a.node.Gossip.Summary()
			st.Gossip = &s
		}
		if ctl := a.node.Engine.Controller(); ctl != nil || a.node.Journal != nil {
			st.Control = buildControlHealth(ctl, a.node.Journal)
		}
	})
	if a.node.Transport != nil {
		states := a.node.Transport.PeerStates()
		th := &transportHealth{Peers: len(states)}
		for addr, bs := range states {
			if bs != transport.BreakerClosed {
				th.SickPeers = append(th.SickPeers, fmt.Sprintf("%s (%s)", addr, bs))
			}
		}
		sort.Strings(th.SickPeers)
		st.Transport = th
	}
	if c, err := net.DialTimeout("tcp", a.node.Addr(), 500*time.Millisecond); err == nil {
		st.Listener = true
		c.Close()
	}
	w.Header().Set("Content-Type", "application/json")
	if !st.Joined || !st.Listener {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}
