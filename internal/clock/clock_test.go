package clock

import (
	"sync/atomic"
	"testing"
	"time"

	"rasc.dev/rasc/internal/netsim"
)

func TestSimClockNow(t *testing.T) {
	s := netsim.New(1)
	c := Sim{S: s}
	if c.Now() != 0 {
		t.Fatalf("Now = %v", c.Now())
	}
	s.RunUntil(3 * time.Second)
	if c.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", c.Now())
	}
}

func TestSimClockAfter(t *testing.T) {
	s := netsim.New(1)
	c := Sim{S: s}
	fired := time.Duration(-1)
	c.After(time.Second, func() { fired = c.Now() })
	s.Run()
	if fired != time.Second {
		t.Fatalf("fired at %v, want 1s", fired)
	}
}

func TestSimClockCancel(t *testing.T) {
	s := netsim.New(1)
	c := Sim{S: s}
	fired := false
	cancel := c.After(time.Second, func() { fired = true })
	cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	// Cancelling twice (and after the event would have fired) is a no-op.
	cancel()
}

func TestRealClockMonotonic(t *testing.T) {
	r := NewReal()
	a := r.Now()
	time.Sleep(2 * time.Millisecond)
	b := r.Now()
	if b <= a {
		t.Fatalf("Now not increasing: %v then %v", a, b)
	}
}

func TestRealClockAfterFires(t *testing.T) {
	r := NewReal()
	var fired atomic.Bool
	done := make(chan struct{})
	r.After(5*time.Millisecond, func() {
		fired.Store(true)
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	if !fired.Load() {
		t.Fatal("timer never fired")
	}
}

func TestRealClockCancel(t *testing.T) {
	r := NewReal()
	var fired atomic.Bool
	cancel := r.After(50*time.Millisecond, func() { fired.Store(true) })
	cancel()
	time.Sleep(80 * time.Millisecond)
	if fired.Load() {
		t.Fatal("cancelled timer fired")
	}
}

func TestRealZeroValueUsable(t *testing.T) {
	var r Real
	if r.Now() < 0 {
		t.Fatal("zero-value Real returned negative time")
	}
}
