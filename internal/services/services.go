// Package services is the catalog of stream-processing services used by
// the examples and the experiment workload: the kinds of operators the
// paper names (filtering, projection, aggregation, transcoding, …) with
// per-unit processing costs and rate/byte ratios.
package services

import (
	"fmt"
	"time"

	"rasc.dev/rasc/internal/spec"
)

// Catalog maps service names to definitions.
type Catalog map[string]spec.ServiceDef

// Standard returns the ten unit-ratio services used in the paper-style
// experiments (10 unique services, §4.1). All have RateRatio and
// BytesRatio 1 so the min-cost flow reduction applies exactly.
func Standard() Catalog {
	defs := []spec.ServiceDef{
		{Name: "filter", ProcPerUnit: 800 * time.Microsecond, RateRatio: 1, BytesRatio: 1},
		{Name: "project", ProcPerUnit: 600 * time.Microsecond, RateRatio: 1, BytesRatio: 1},
		{Name: "aggregate", ProcPerUnit: 1500 * time.Microsecond, RateRatio: 1, BytesRatio: 1},
		{Name: "join", ProcPerUnit: 2500 * time.Microsecond, RateRatio: 1, BytesRatio: 1},
		{Name: "transcode", ProcPerUnit: 4 * time.Millisecond, RateRatio: 1, BytesRatio: 1},
		{Name: "encrypt", ProcPerUnit: 1200 * time.Microsecond, RateRatio: 1, BytesRatio: 1},
		{Name: "compress", ProcPerUnit: 2 * time.Millisecond, RateRatio: 1, BytesRatio: 1},
		{Name: "watermark", ProcPerUnit: 1 * time.Millisecond, RateRatio: 1, BytesRatio: 1},
		{Name: "analyze", ProcPerUnit: 3 * time.Millisecond, RateRatio: 1, BytesRatio: 1},
		{Name: "annotate", ProcPerUnit: 700 * time.Microsecond, RateRatio: 1, BytesRatio: 1},
	}
	c := make(Catalog, len(defs))
	for _, d := range defs {
		c[d.Name] = d
	}
	return c
}

// Extended returns Standard plus services with non-unit ratios that
// exercise the LP composer (the paper's future-work case).
func Extended() Catalog {
	c := Standard()
	for _, d := range []spec.ServiceDef{
		{Name: "downsample", ProcPerUnit: 900 * time.Microsecond, RateRatio: 0.5, BytesRatio: 1},
		{Name: "upsample", ProcPerUnit: 900 * time.Microsecond, RateRatio: 2, BytesRatio: 1},
		{Name: "shrink", ProcPerUnit: 3 * time.Millisecond, RateRatio: 1, BytesRatio: 0.5},
	} {
		c[d.Name] = d
	}
	return c
}

// Names returns the catalog's service names in a stable order.
func (c Catalog) Names() []string {
	out := make([]string, 0, len(c))
	// Deterministic: insertion order is not stable for maps, so sort.
	for name := range c {
		out = append(out, name)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MustGet fetches a definition or panics with a descriptive message.
func (c Catalog) MustGet(name string) spec.ServiceDef {
	d, ok := c[name]
	if !ok {
		panic(fmt.Sprintf("services: unknown service %q", name))
	}
	return d
}
