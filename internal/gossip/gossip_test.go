package gossip

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/simnet"
)

// testConfig sets protocol timers sized for the simulated PlanetLab
// topology: inter-site RTTs reach ~330ms, so the direct-probe timeout must
// exceed that or every probe falls through to the indirect path. Virtual
// time is free, so the intervals can stay realistic. DeadRetention is
// effectively infinite so partition-heal tests don't race tombstone
// expiry.
func testConfig() Config {
	return Config{
		ProbeInterval:    time.Second,
		ProbeTimeout:     500 * time.Millisecond,
		IndirectProbes:   2,
		SuspicionTimeout: 3 * time.Second,
		SyncInterval:     5 * time.Second,
		DeadRetention:    30 * time.Minute,
	}
}

// gossipCluster is a simnet overlay with one gossip instance per node.
type gossipCluster struct {
	c  *simnet.Cluster
	gs []*Gossip
}

// newGossipCluster builds n nodes; every node i announces service
// "svc-<i%4>" in its digest. When bootstrap is true, membership spreads
// from node 0 only (Join); otherwise every node is pre-seeded with the
// full roster.
func newGossipCluster(n int, seed int64, cfg Config, bootstrap bool) *gossipCluster {
	c := simnet.New(simnet.Options{N: n, Seed: seed})
	tc := &gossipCluster{c: c}
	for i, node := range c.Nodes {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
		g := New(node, c.Clock, rng, cfg)
		idx := i
		g.SetDigestFunc(func() Digest {
			return Digest{
				Report:   monitor.Report{InBpsCap: float64(1000 + idx), OutBpsCap: float64(2000 + idx)},
				Services: []string{fmt.Sprintf("svc-%d", idx%4)},
			}
		})
		tc.gs = append(tc.gs, g)
	}
	if bootstrap {
		for i := 1; i < n; i++ {
			tc.gs[i].Join(c.Nodes[0].Info())
		}
	} else {
		var infos []overlay.NodeInfo
		for _, node := range c.Nodes {
			infos = append(infos, node.Info())
		}
		for _, g := range tc.gs {
			g.Seed(infos)
		}
	}
	for _, g := range tc.gs {
		g.Start()
	}
	return tc
}

// step advances virtual time by d. Gossip loops reschedule forever, so
// tests must advance with RunUntil, never Run.
func (tc *gossipCluster) step(d time.Duration) {
	tc.c.Sim.RunUntil(tc.c.Sim.Now() + d)
}

// viewMatches reports whether g's view holds the expected state for every
// node index in want. A missing entry satisfies an expected death: dead
// entries are deliberately forgotten after DeadRetention.
func viewMatches(tc *gossipCluster, g *Gossip, want map[int]State) bool {
	for i, st := range want {
		m, ok := g.Member(tc.c.Nodes[i].ID())
		if !ok {
			if st == StateDead {
				continue
			}
			return false
		}
		if m.State != st {
			return false
		}
	}
	return true
}

// runUntilConverged steps one probe interval at a time until every gossip
// in check agrees with want, failing the test after maxRounds.
func runUntilConverged(t *testing.T, tc *gossipCluster, check []int, want map[int]State, maxRounds int) int {
	t.Helper()
	cfg := tc.gs[0].Config()
	for r := 1; r <= maxRounds; r++ {
		tc.step(cfg.ProbeInterval)
		done := true
		for _, i := range check {
			if !viewMatches(tc, tc.gs[i], want) {
				done = false
				break
			}
		}
		if done {
			return r
		}
	}
	for _, i := range check {
		if !viewMatches(tc, tc.gs[i], want) {
			t.Errorf("node %d view did not converge: %+v", i, tc.gs[i].Summary())
		}
	}
	t.Fatalf("views not converged after %d rounds", maxRounds)
	return maxRounds
}

func TestBootstrapConvergence(t *testing.T) {
	const n = 16
	tc := newGossipCluster(n, 7, testConfig(), true)
	want := map[int]State{}
	all := make([]int, n)
	for i := range all {
		all[i] = i
		want[i] = StateAlive
	}
	rounds := runUntilConverged(t, tc, all, want, 40)
	t.Logf("membership converged in %d rounds", rounds)

	// Digests must follow: every node eventually holds a versioned digest
	// for every peer, and the service index answers from the local view.
	cfg := tc.gs[0].Config()
	for r := 0; ; r++ {
		if r > 40 {
			t.Fatal("digests not fully disseminated after 40 extra rounds")
		}
		complete := true
		for _, g := range tc.gs {
			for _, m := range g.Members() {
				if m.Digest.Version == 0 {
					complete = false
				}
			}
		}
		if complete {
			break
		}
		tc.step(cfg.ProbeInterval)
	}
	for gi, g := range tc.gs {
		hosts := g.HostsFor("svc-1")
		if len(hosts) != 4 {
			t.Fatalf("node %d HostsFor(svc-1) = %d hosts, want 4", gi, len(hosts))
		}
		for _, h := range hosts {
			idx := tc.c.Index(h.ID)
			if idx%4 != 1 {
				t.Errorf("node %d HostsFor(svc-1) includes node %d", gi, idx)
			}
			rep, ok := g.ReportFor(h.ID)
			if !ok || rep.InBpsCap != float64(1000+idx) {
				t.Errorf("node %d ReportFor(node %d) = %+v ok=%v", gi, idx, rep, ok)
			}
		}
	}
}

// TestChurnAndPartitionConvergence32 is the churn satellite: a 32-node
// overlay, two nodes cut off by a partition and three killed outright;
// every survivor's view must converge (dead nodes marked dead) within a
// bounded number of protocol rounds, and after the partition heals the
// cut-off nodes must be re-admitted everywhere. Fully deterministic: one
// seed, virtual clock, no wall-clock sleeps.
func TestChurnAndPartitionConvergence32(t *testing.T) {
	const (
		n         = 32
		seed      = 11
		killFrom  = 27 // nodes 27..29 are killed (fail-stop)
		partFrom  = 30 // nodes 30,31 are partitioned away, later healed
		boundKill = 60 // rounds for survivors to converge after the churn
		boundHeal = 400
	)
	tc := newGossipCluster(n, seed, testConfig(), true)

	allAlive := map[int]State{}
	all := make([]int, n)
	for i := range all {
		all[i] = i
		allAlive[i] = StateAlive
	}
	runUntilConverged(t, tc, all, allAlive, 60)

	// Partition 30,31 from everyone else (both stay up), and kill 27..29.
	setPartition := func(blocked bool) {
		for i := partFrom; i < n; i++ {
			for j := 0; j < partFrom; j++ {
				tc.c.Net.SetPartition(tc.c.NetIDs[i], tc.c.NetIDs[j], blocked)
			}
		}
	}
	setPartition(true)
	for i := killFrom; i < partFrom; i++ {
		tc.gs[i].Stop()
		tc.c.Endpoints[i].Close()
	}

	survivors := make([]int, 0, killFrom)
	want := map[int]State{}
	for i := 0; i < n; i++ {
		switch {
		case i < killFrom:
			want[i] = StateAlive
			survivors = append(survivors, i)
		default:
			want[i] = StateDead // killed and partitioned both appear dead
		}
	}
	rounds := runUntilConverged(t, tc, survivors, want, boundKill)
	t.Logf("survivor views converged %d rounds after churn", rounds)

	// Heal the partition. The majority holds 30,31 as dead and no longer
	// probes them; recovery rides the gossip-to-the-dead anti-entropy path
	// plus incarnation refutation, so give it sync-interval-scale rounds.
	setPartition(false)
	healed := map[int]State{}
	for i := 0; i < n; i++ {
		if i >= killFrom && i < partFrom {
			healed[i] = StateDead
		} else {
			healed[i] = StateAlive
		}
	}
	checkHealed := append(append([]int{}, survivors...), partFrom, partFrom+1)
	rounds = runUntilConverged(t, tc, checkHealed, healed, boundHeal)
	t.Logf("partitioned nodes re-admitted %d rounds after heal", rounds)
}

func TestDeterministicReplay(t *testing.T) {
	render := func() string {
		tc := newGossipCluster(8, 3, testConfig(), true)
		tc.step(10 * time.Second)
		tc.gs[5].Stop()
		tc.c.Endpoints[5].Close()
		tc.step(10 * time.Second)
		out := ""
		for i, g := range tc.gs {
			out += fmt.Sprintf("node %d rounds %d:", i, g.Rounds())
			for _, m := range g.Members() {
				out += fmt.Sprintf(" %s/%d/v%d", m.State, m.Incarnation, m.Digest.Version)
			}
			out += "\n"
		}
		return out
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed diverged:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// fixture returns an idle 2-node cluster for white-box state machine
// tests: g is node 0's instance, peer is node 1's identity. Both protocol
// loops are stopped and node 0's piggyback queue cleared so only the
// test's own calls mutate state.
func fixture(t *testing.T) (*gossipCluster, *Gossip, overlay.NodeInfo) {
	t.Helper()
	tc := newGossipCluster(2, 5, testConfig(), false)
	for _, g := range tc.gs {
		g.Stop()
	}
	g := tc.gs[0]
	g.queue = make(map[overlay.ID]*queued)
	return tc, g, tc.c.Nodes[1].Info()
}

func TestPrecedenceRules(t *testing.T) {
	_, g, peer := fixture(t)
	id := peer.ID

	// suspect{i} overrides alive{i}.
	g.apply(update{Node: peer, State: StateSuspect, Inc: 0})
	if m, _ := g.Member(id); m.State != StateSuspect {
		t.Fatalf("suspect{0} over alive{0}: state %v", m.State)
	}
	// alive{i} does not clear suspect{i}...
	g.apply(update{Node: peer, State: StateAlive, Inc: 0})
	if m, _ := g.Member(id); m.State != StateSuspect {
		t.Fatalf("alive{0} cleared suspect{0}: state %v", m.State)
	}
	// ...but alive{i+1} (a refutation) does.
	g.apply(update{Node: peer, State: StateAlive, Inc: 1})
	if m, _ := g.Member(id); m.State != StateAlive || m.Incarnation != 1 {
		t.Fatalf("alive{1} over suspect{0}: %+v", m)
	}
	// dead{i-1} loses to alive{i}.
	g.apply(update{Node: peer, State: StateDead, Inc: 0})
	if m, _ := g.Member(id); m.State != StateAlive {
		t.Fatalf("dead{0} overrode alive{1}: state %v", m.State)
	}
	// dead{i} overrides alive{i}.
	g.apply(update{Node: peer, State: StateDead, Inc: 1})
	if m, _ := g.Member(id); m.State != StateDead {
		t.Fatalf("dead{1} did not override alive{1}: state %v", m.State)
	}
	// suspect/alive at any ≤ incarnation cannot resurrect a tombstone.
	g.apply(update{Node: peer, State: StateAlive, Inc: 1})
	g.apply(update{Node: peer, State: StateSuspect, Inc: 1})
	if m, _ := g.Member(id); m.State != StateDead {
		t.Fatalf("tombstone resurrected by stale gossip: state %v", m.State)
	}
	// A strictly higher incarnation can only come from the node itself, so
	// it revives even a tombstone (rejoin).
	g.apply(update{Node: peer, State: StateAlive, Inc: 2})
	if m, _ := g.Member(id); m.State != StateAlive || m.Incarnation != 2 {
		t.Fatalf("alive{2} did not revive tombstone: %+v", m)
	}
}

func TestDeadUpdateForUnknownMemberLeavesTombstone(t *testing.T) {
	tc, g, _ := fixture(t)
	ghost := overlay.NodeInfo{ID: overlay.HashID("ghost"), Addr: "mem-999"}
	g.apply(update{Node: ghost, State: StateDead, Inc: 3})
	if m, ok := g.Member(ghost.ID); !ok || m.State != StateDead || m.Incarnation != 3 {
		t.Fatalf("tombstone not recorded: %+v ok=%v", m, ok)
	}
	// Stale alive gossip must not resurrect it.
	g.apply(update{Node: ghost, State: StateAlive, Inc: 3})
	if m, _ := g.Member(ghost.ID); m.State != StateDead {
		t.Fatalf("stale alive resurrected tombstone: %+v", m)
	}
	// The tombstone ages out after DeadRetention.
	tc.step(g.Config().DeadRetention + time.Second)
	if _, ok := g.Member(ghost.ID); ok {
		t.Fatal("tombstone survived DeadRetention")
	}
}

func TestSelfRefutation(t *testing.T) {
	_, g, _ := fixture(t)
	self := g.node.Info()
	g.apply(update{Node: self, State: StateSuspect, Inc: 0})
	if g.incarnation != 1 {
		t.Fatalf("incarnation after refuting suspect{0}: %d", g.incarnation)
	}
	if m, _ := g.Member(self.ID); m.State != StateAlive || m.Incarnation != 1 {
		t.Fatalf("self entry after refutation: %+v", m)
	}
	q, ok := g.queue[self.ID]
	if !ok || q.u.State != StateAlive || q.u.Inc != 1 {
		t.Fatalf("refutation not queued: %+v ok=%v", q, ok)
	}
	// A death rumor about self at a higher incarnation is also refuted.
	g.apply(update{Node: self, State: StateDead, Inc: 4})
	if g.incarnation != 5 {
		t.Fatalf("incarnation after refuting dead{4}: %d", g.incarnation)
	}
	// Stale rumors below the current incarnation are ignored.
	g.apply(update{Node: self, State: StateSuspect, Inc: 2})
	if g.incarnation != 5 {
		t.Fatalf("stale rumor bumped incarnation: %d", g.incarnation)
	}
}

func TestDigestMergeKeepsNewestVersion(t *testing.T) {
	_, g, peer := fixture(t)
	d3 := &Digest{Version: 3, Report: monitor.Report{InBpsCap: 3}}
	d2 := &Digest{Version: 2, Report: monitor.Report{InBpsCap: 2}}
	d5 := &Digest{Version: 5, Report: monitor.Report{InBpsCap: 5}}
	g.apply(update{Node: peer, State: StateAlive, Inc: 0, Digest: d3})
	g.apply(update{Node: peer, State: StateAlive, Inc: 0, Digest: d2})
	if m, _ := g.Member(peer.ID); m.Digest.Version != 3 {
		t.Fatalf("older digest overwrote newer: v%d", m.Digest.Version)
	}
	g.apply(update{Node: peer, State: StateAlive, Inc: 0, Digest: d5})
	m, _ := g.Member(peer.ID)
	if m.Digest.Version != 5 || m.Digest.Report.InBpsCap != 5 {
		t.Fatalf("newest digest not kept: %+v", m.Digest)
	}
	if rep, ok := g.ReportFor(peer.ID); !ok || rep.InBpsCap != 5 {
		t.Fatalf("ReportFor = %+v ok=%v", rep, ok)
	}
	// Suspect members are not a valid stats source.
	g.apply(update{Node: peer, State: StateSuspect, Inc: 0})
	if _, ok := g.ReportFor(peer.ID); ok {
		t.Fatal("ReportFor returned stats for a suspect member")
	}
}

func TestPiggybackBudget(t *testing.T) {
	_, g, peer := fixture(t)
	g.cfg.MaxPiggyback = 1
	g.enqueue(update{Node: peer, State: StateSuspect, Inc: 0})
	limit := g.retransmitLimit()
	for i := 0; i < limit; i++ {
		us := g.pickUpdates()
		if len(us) != 1 || us[0].Node.ID != peer.ID {
			t.Fatalf("transmit %d: picked %+v", i, us)
		}
	}
	if len(g.queue) != 0 {
		t.Fatalf("update not retired after %d transmits", limit)
	}
	if us := g.pickUpdates(); us != nil {
		t.Fatalf("empty queue yielded %+v", us)
	}
	// A newer update about the same node replaces the queued one and
	// resets its budget.
	g.enqueue(update{Node: peer, State: StateSuspect, Inc: 1})
	g.pickUpdates()
	g.enqueue(update{Node: peer, State: StateDead, Inc: 1})
	if q := g.queue[peer.ID]; q.transmits != 0 || q.u.State != StateDead {
		t.Fatalf("replacement did not reset budget: %+v", q)
	}
}

func TestSummaryCountsAndDigestAge(t *testing.T) {
	_, g, peer := fixture(t)
	s := g.Summary()
	if s.Alive != 2 || s.Suspect != 0 || s.Dead != 0 || s.OldestDigestAgeMs != -1 {
		t.Fatalf("initial summary: %+v", s)
	}
	g.apply(update{Node: peer, State: StateAlive, Inc: 0, Digest: &Digest{Version: 1}})
	// Backdate the learn time: age is measured against the local clock.
	g.members[peer.ID].DigestAt = g.clk.Now() - 1500*time.Millisecond
	s = g.Summary()
	if s.OldestDigestAgeMs < 1500 {
		t.Fatalf("digest age %dms, want ≥1500", s.OldestDigestAgeMs)
	}
	g.apply(update{Node: peer, State: StateDead, Inc: 0})
	s = g.Summary()
	if s.Alive != 1 || s.Dead != 1 || s.OldestDigestAgeMs != -1 {
		t.Fatalf("summary after death: %+v", s)
	}
}
