package experiment

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
)

// FederationConfig parameterizes RunFederation: a multi-cluster federated
// deployment — the service catalog partitioned across clusters so most
// requests can complete only through a cross-boundary hand-off — measured
// against a flat single-solver deployment of the same size facing the
// identical request sequence. The zero value selects 24 nodes in 3
// clusters, 12 requests per seed over 3 seeds.
type FederationConfig struct {
	Nodes    int
	Clusters int // 2..4 in the committed benchmark
	// BorderPeers is how many nodes per cluster run the summary exchange
	// (0: deploy's default of 1).
	BorderPeers int
	// BoundaryBps is each inter-cluster boundary link's capacity
	// (0: deploy's default 100 Mbps).
	BoundaryBps float64
	Seeds       []int64
	Requests    int // per seed
	Rate        int // units/sec per substream
	UnitBytes   int
	// MaxServices bounds a request's chain length (services are always
	// drawn from one cluster's catalog partition, so the chain is
	// satisfiable by exactly one cluster).
	MaxServices int
	SubmitGap   time.Duration
	MeasureFor  time.Duration
	// Warmup is how long the federated deployment runs before the first
	// submission, letting border summaries and digests converge. The flat
	// baseline gets the same warmup so delivery windows align.
	Warmup time.Duration
	// Parallelism bounds concurrent seeds (0: serial — the committed
	// benchmark is small enough that fan-out buys little).
	Parallelism int
	Progress    func(string)
}

func (c *FederationConfig) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 24
	}
	if c.Clusters == 0 {
		c.Clusters = 3
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.Requests == 0 {
		c.Requests = 12
	}
	if c.Rate == 0 {
		c.Rate = 5
	}
	if c.UnitBytes == 0 {
		c.UnitBytes = 1250
	}
	if c.MaxServices == 0 {
		c.MaxServices = 2
	}
	if c.SubmitGap == 0 {
		c.SubmitGap = 400 * time.Millisecond
	}
	if c.MeasureFor == 0 {
		c.MeasureFor = 30 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 30 * time.Second
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
}

// FederationCell is one deployment's measurement over a seed's request
// sequence.
type FederationCell struct {
	Submitted int
	Composed  int
	// CrossCluster counts compositions that crossed a boundary (composer
	// "federated+..."); always 0 in the flat baseline.
	CrossCluster int
	// Hand-off protocol counters summed over every coordinator
	// (federated cell only): attempts that committed, failed outright, or
	// were refused for boundary-link saturation.
	HandoffsOK        int64
	HandoffsFailed    int64
	HandoffsSaturated int64
	// MaxBoundaryUtilization is the highest reserved/capacity fraction
	// observed across boundary links after all submissions — > 1 would
	// mean the credit accounting oversubscribed a link.
	MaxBoundaryUtilization float64
	SumComposeLatency      time.Duration
	Emitted, Received      int64
}

// ComposedFraction is Composed/Submitted.
func (c FederationCell) ComposedFraction() float64 {
	if c.Submitted == 0 {
		return 0
	}
	return float64(c.Composed) / float64(c.Submitted)
}

// DeliveredFraction is Received/Emitted over the measurement window.
func (c FederationCell) DeliveredFraction() float64 {
	if c.Emitted == 0 {
		return 0
	}
	return float64(c.Received) / float64(c.Emitted)
}

// MeanComposeLatencyMs is the average submission-to-composition virtual
// latency over the composed requests.
func (c FederationCell) MeanComposeLatencyMs() float64 {
	if c.Composed == 0 {
		return 0
	}
	return float64(c.SumComposeLatency) / float64(c.Composed) / float64(time.Millisecond)
}

// HandoffSuccessRate is committed hand-offs over attempts (1 when no
// attempt was made).
func (c FederationCell) HandoffSuccessRate() float64 {
	attempts := c.HandoffsOK + c.HandoffsFailed + c.HandoffsSaturated
	if attempts == 0 {
		return 1
	}
	return float64(c.HandoffsOK) / float64(attempts)
}

// FederationRun pairs one seed's federated cell with its flat baseline.
type FederationRun struct {
	Seed      int64
	Federated FederationCell
	Flat      FederationCell
}

// FederationResults is a completed federation comparison.
type FederationResults struct {
	Config FederationConfig
	Runs   []FederationRun
}

// Aggregate sums every seed's cells; pick selects the side.
func (r *FederationResults) Aggregate(pick func(FederationRun) FederationCell) FederationCell {
	var out FederationCell
	for _, run := range r.Runs {
		c := pick(run)
		out.Submitted += c.Submitted
		out.Composed += c.Composed
		out.CrossCluster += c.CrossCluster
		out.HandoffsOK += c.HandoffsOK
		out.HandoffsFailed += c.HandoffsFailed
		out.HandoffsSaturated += c.HandoffsSaturated
		out.SumComposeLatency += c.SumComposeLatency
		out.Emitted += c.Emitted
		out.Received += c.Received
		if c.MaxBoundaryUtilization > out.MaxBoundaryUtilization {
			out.MaxBoundaryUtilization = c.MaxBoundaryUtilization
		}
	}
	return out
}

// clusterPartition splits the standard catalog round-robin into k groups:
// cluster i announces only group i, so a request drawn from group g can
// be placed only inside cluster g.
func clusterPartition(k int) [][]string {
	names := services.Standard().Names()
	groups := make([][]string, k)
	for i, n := range names {
		groups[i%k] = append(groups[i%k], n)
	}
	return groups
}

// federationRequests builds the seed's deterministic request sequence:
// chains of 1..MaxServices services drawn from a single cluster's
// partition, submitted round-robin across origins — so roughly
// (k-1)/k of the requests land at an origin whose own cluster cannot
// place them and must hand off.
func federationRequests(cfg FederationConfig, groups [][]string, seed int64) []spec.Request {
	rng := rand.New(rand.NewSource(seed*1_000_003 + 17))
	reqs := make([]spec.Request, cfg.Requests)
	for i := range reqs {
		g := groups[rng.Intn(len(groups))]
		n := 1 + rng.Intn(cfg.MaxServices)
		if n > len(g) {
			n = len(g)
		}
		chain := make([]string, 0, n)
		for _, j := range rng.Perm(len(g))[:n] {
			chain = append(chain, g[j])
		}
		reqs[i] = spec.Request{
			ID:         fmt.Sprintf("fed-%d-%d", seed, i),
			UnitBytes:  cfg.UnitBytes,
			Substreams: []spec.Substream{{Services: chain, Rate: cfg.Rate}},
		}
	}
	return reqs
}

// runFederationCell deploys one system — federated when fed is true, flat
// otherwise — and drives the request sequence through it.
func runFederationCell(cfg FederationConfig, seed int64, fed bool, reqs []spec.Request) FederationCell {
	opts := deploy.SystemOptions{
		Nodes:           cfg.Nodes,
		Seed:            seed,
		EnableGossip:    true,
		ServicesPerNode: 5,
		Gossip:          gossip.Config{ProbeTimeout: 500 * time.Millisecond},
	}
	if fed {
		opts.Federation = &deploy.FederationOptions{
			Clusters:        cfg.Clusters,
			BorderPeers:     cfg.BorderPeers,
			BoundaryBps:     cfg.BoundaryBps,
			ClusterServices: clusterPartition(cfg.Clusters),
		}
	}
	sys := deploy.NewSystem(opts)
	sys.Sim.RunUntil(sys.Sim.Now() + cfg.Warmup)

	var cell FederationCell
	composer := &core.MinCost{}
	type admitted struct {
		origin int
		req    spec.Request
	}
	var live []admitted
	const rpcTimeout = 10 * time.Second
	for i, req := range reqs {
		origin := i % cfg.Nodes
		cell.Submitted++
		done, ok := false, false
		var graph *core.ExecutionGraph
		started := sys.Sim.Now()
		var composedAt time.Duration
		sys.Engines[origin].Submit(req, composer, rpcTimeout, func(g *core.ExecutionGraph, err error) {
			done, ok, graph = true, err == nil, g
			composedAt = sys.Sim.Now()
		})
		deadline := sys.Sim.Now() + 2*rpcTimeout
		for !done && sys.Sim.Now() < deadline {
			sys.Sim.RunUntil(sys.Sim.Now() + 100*time.Millisecond)
		}
		if ok {
			cell.Composed++
			cell.SumComposeLatency += composedAt - started
			if graph.Composer != composer.Name() {
				cell.CrossCluster++
			}
			live = append(live, admitted{origin: origin, req: req})
		}
		sys.Sim.RunUntil(sys.Sim.Now() + cfg.SubmitGap)
	}
	for k := range sys.Ledgers {
		for _, u := range sys.Ledgers[k].Usage() {
			if u.CapacityBps > 0 && u.ReservedBps/u.CapacityBps > cell.MaxBoundaryUtilization {
				cell.MaxBoundaryUtilization = u.ReservedBps / u.CapacityBps
			}
		}
	}
	sys.Sim.RunUntil(sys.Sim.Now() + cfg.MeasureFor)
	for _, a := range live {
		eng := sys.Engines[a.origin]
		for l := range a.req.Substreams {
			cell.Emitted += eng.EmittedUnits(a.req.ID, l)
			if sink := eng.Sink(a.req.ID, l); sink != nil {
				cell.Received += sink.Received
			}
		}
	}
	for _, coord := range sys.Federation {
		if coord == nil {
			continue
		}
		st := coord.Stats()
		cell.HandoffsOK += st.HandoffsOK
		cell.HandoffsFailed += st.HandoffsFailed
		cell.HandoffsSaturated += st.HandoffsSaturated
	}
	return cell
}

// RunFederation measures federated multi-cluster composition against the
// flat single-solver baseline: the same seeds, the same request
// sequences, one deployment partitioned into clusters with boundary
// hand-offs and one flat deployment where a single composer sees every
// host.
func RunFederation(cfg FederationConfig) (*FederationResults, error) {
	cfg.defaults()
	if cfg.Clusters < 2 {
		return nil, fmt.Errorf("experiment: federation comparison needs >= 2 clusters, got %d", cfg.Clusters)
	}
	res := &FederationResults{Config: cfg}
	res.Runs = make([]FederationRun, len(cfg.Seeds))
	groups := clusterPartition(cfg.Clusters)
	var mu sync.Mutex
	err := ParallelFor(len(cfg.Seeds), cfg.Parallelism, func(i int) error {
		seed := cfg.Seeds[i]
		reqs := federationRequests(cfg, groups, seed)
		fed := runFederationCell(cfg, seed, true, reqs)
		flat := runFederationCell(cfg, seed, false, reqs)
		res.Runs[i] = FederationRun{Seed: seed, Federated: fed, Flat: flat}
		if cfg.Progress != nil {
			mu.Lock()
			cfg.Progress(fmt.Sprintf(
				"seed=%d federated composed=%d/%d (%d cross-cluster, handoff ok=%d fail=%d) flat composed=%d/%d",
				seed, fed.Composed, fed.Submitted, fed.CrossCluster, fed.HandoffsOK,
				fed.HandoffsFailed+fed.HandoffsSaturated, flat.Composed, flat.Submitted))
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
