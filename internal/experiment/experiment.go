// Package experiment reproduces the evaluation of §4: it deploys a
// simulated 32-node system, submits randomly generated service requests
// with each composition algorithm at each requested rate, streams data for
// a measurement window, and aggregates the six figure metrics (composed
// requests, end-to-end delay, delivered fraction, timely fraction,
// out-of-order fraction, jitter) over multiple seeded runs.
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/metrics"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/telemetry"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/workload"
)

// Config parameterizes a sweep. The zero value selects the paper's setup
// (scaled to simulation): 32 nodes, 10 services × 5 per node, requests of
// 2–5 services, rates 50–200 Kbps, 5 seeds, three composers.
type Config struct {
	Nodes     int
	Seeds     []int64
	Rates     []int // units/sec; 1 unit = UnitBytes*8 bits (default 10 kbit)
	Requests  int
	Composers []string

	SubmitGap  time.Duration // virtual time between submissions
	MeasureFor time.Duration // virtual streaming time after submissions

	UnitBytes        int
	MinBps, MaxBps   float64 // access-link capacity range
	MaxLinkBacklog   time.Duration
	CongestionJitter float64
	ProcJitter       float64
	SchedPolicy      string
	ServicesPerNode  int
	MinServices      int
	MaxServices      int
	MaxSubstreams    int
	TimelyFactor     float64
	// StatsSource selects where composition statistics come from:
	// "fetch" (default: per-host RPC snapshots at composition time),
	// "gossip" (monitoring digests disseminated by the membership
	// protocol, with RPC fallback until the view fills), or "stale"
	// (fetch against reports cached for StatsMaxAge — the
	// stale-statistics ablation; StatsMaxAge defaults to 30s).
	StatsSource string
	// StatsMaxAge makes nodes serve cached monitoring reports no
	// fresher than this (0 = always fresh): the stale-statistics
	// ablation.
	StatsMaxAge time.Duration
	// PoissonArrivals replaces the fixed submission gap with
	// exponentially distributed inter-arrival times of the same mean.
	PoissonArrivals bool
	// BackgroundFlows adds cross-traffic flows invisible to monitoring
	// (see deploy.SystemOptions).
	BackgroundFlows int
	// Adaptation, when set, enables the event-driven adaptation control
	// plane on every node of every run. Each run's decision traces land
	// in its RunStats.Decisions.
	Adaptation *stream.AdaptationConfig

	// Parallelism bounds how many (composer, rate, seed) cells run
	// concurrently: each cell is an independent simulated deployment, so
	// the sweep fans out across cores. 0 selects runtime.NumCPU(); 1
	// forces the serial path. The Runs ordering and every figure are
	// independent of the setting — each cell seeds its own RNGs and the
	// results land at fixed indices.
	Parallelism int

	// Progress, when set, receives one line per completed run. Under a
	// parallel sweep the callback is serialised but lines arrive in
	// completion order, not sweep order.
	Progress func(string)
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 32
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if len(c.Rates) == 0 {
		c.Rates = []int{5, 10, 15, 20} // 50..200 Kbps
	}
	if c.Requests == 0 {
		c.Requests = 12
	}
	if len(c.Composers) == 0 {
		c.Composers = []string{"mincost", "greedy", "random"}
	}
	if c.SubmitGap == 0 {
		c.SubmitGap = 400 * time.Millisecond
	}
	if c.MeasureFor == 0 {
		c.MeasureFor = 30 * time.Second
	}
	if c.UnitBytes == 0 {
		c.UnitBytes = 1250 // 10 kbit: 1 unit/sec = 10 Kbps
	}
	if c.MinBps == 0 {
		c.MinBps = 1.5e5
	}
	if c.MaxBps == 0 {
		c.MaxBps = 1.2e6
	}
	if c.CongestionJitter == 0 {
		c.CongestionJitter = 0.5
	}
	if c.MaxLinkBacklog == 0 {
		c.MaxLinkBacklog = 300 * time.Millisecond
	}
	if c.ProcJitter == 0 {
		c.ProcJitter = 0.2
	}
	if c.ServicesPerNode == 0 {
		c.ServicesPerNode = 5
	}
	if c.MinServices == 0 {
		c.MinServices = 2
	}
	if c.MaxServices == 0 {
		c.MaxServices = 5
	}
	if c.MaxSubstreams == 0 {
		c.MaxSubstreams = 1
	}
	if c.TimelyFactor == 0 {
		c.TimelyFactor = 1
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
}

// NewComposer builds a composer by name: "mincost", "mincost-nosplit",
// "greedy", "random" or "lp".
func NewComposer(name string) (core.Composer, error) { return core.ByName(name) }

// RunStats aggregates one (composer, rate, seed) run.
type RunStats struct {
	Composer string
	Rate     int // units/sec per substream
	Seed     int64

	Submitted  int
	Composed   int
	Emitted    int64
	Received   int64
	Timely     int64
	OutOfOrder int64
	SumDelay   time.Duration
	SumJitter  time.Duration
	// SumComposeLatency accumulates the virtual time from submission to
	// composition completion over the composed requests (discovery +
	// statistics gathering + flow solving + instantiation).
	SumComposeLatency time.Duration
	// DelayP95Ms is the 95th-percentile end-to-end delay across every
	// delivered unit of the run.
	DelayP95Ms float64

	// Decisions is the run's adaptation decision log (empty unless
	// Config.Adaptation armed the control plane): every completed
	// reallocation's causal chain from trigger to convergence.
	Decisions []trace.Decision
}

// MeanConvergenceMs is the average trigger-to-convergence latency over the
// run's converged adaptation decisions, in milliseconds of virtual time
// (0 when none converged).
func (r RunStats) MeanConvergenceMs() float64 {
	var sum time.Duration
	n := 0
	for _, d := range r.Decisions {
		if d.Converged {
			sum += d.ConvergedAt - d.TriggeredAt
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n) / float64(time.Millisecond)
}

// MeanComposeLatencyMs is the average time to compose one admitted
// request, in milliseconds of virtual time.
func (r RunStats) MeanComposeLatencyMs() float64 {
	if r.Composed == 0 {
		return 0
	}
	return float64(r.SumComposeLatency) / float64(r.Composed) / float64(time.Millisecond)
}

// DeliveredFraction is the fraction of emitted units that reached their
// destination (Figure 8's metric).
func (r RunStats) DeliveredFraction() float64 {
	if r.Emitted == 0 {
		return 0
	}
	return float64(r.Received) / float64(r.Emitted)
}

// TimelyFraction is the fraction of delivered units that were timely
// (Figure 9).
func (r RunStats) TimelyFraction() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.Timely) / float64(r.Received)
}

// OutOfOrderFraction is the fraction of delivered units that arrived out
// of order (Figure 10).
func (r RunStats) OutOfOrderFraction() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.OutOfOrder) / float64(r.Received)
}

// MeanDelayMs is the average end-to-end delay in milliseconds (Figure 7).
func (r RunStats) MeanDelayMs() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.SumDelay) / float64(r.Received) / float64(time.Millisecond)
}

// MeanJitterMs is the average jitter in milliseconds (Figure 11).
func (r RunStats) MeanJitterMs() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.SumJitter) / float64(r.Received) / float64(time.Millisecond)
}

// Results is a completed sweep.
type Results struct {
	Config Config
	Runs   []RunStats
	// Telemetry is the process-wide runtime telemetry snapshot (Prometheus
	// text format) captured when the sweep finished — the same metric
	// catalogue a live node serves on /metrics, accumulated across every
	// simulated node of every run.
	Telemetry string
}

// Run executes the full sweep. Cells — one per (rate, composer, seed)
// triple — fan out across cfg.Parallelism workers; each cell builds its
// own simulated deployment, so runs share nothing but the process-wide
// telemetry registry. Results land at the same indices the serial sweep
// produced, so figures and CSVs are byte-identical at any parallelism.
func Run(cfg Config) (*Results, error) {
	cfg.defaults()
	res := &Results{Config: cfg}

	type cell struct {
		rate int
		name string
		seed int64
	}
	cells := make([]cell, 0, len(cfg.Rates)*len(cfg.Composers)*len(cfg.Seeds))
	for _, rate := range cfg.Rates {
		for _, name := range cfg.Composers {
			for _, seed := range cfg.Seeds {
				cells = append(cells, cell{rate, name, seed})
			}
		}
	}
	res.Runs = make([]RunStats, len(cells))

	workers := cfg.Parallelism
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	telSweepParallelism.Set(float64(workers))

	var progressMu sync.Mutex
	err := ParallelFor(len(cells), workers, func(i int) error {
		c := cells[i]
		rs, err := RunOne(cfg, c.name, c.rate, c.seed)
		if err != nil {
			return err
		}
		res.Runs[i] = rs
		if cfg.Progress != nil {
			progressMu.Lock()
			cfg.Progress(fmt.Sprintf("%-16s rate=%3d0Kbps seed=%d composed=%2d/%2d delivered=%.3f delay=%6.1fms jitter=%5.1fms",
				c.name, c.rate, c.seed, rs.Composed, rs.Submitted, rs.DeliveredFraction(), rs.MeanDelayMs(), rs.MeanJitterMs()))
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Telemetry = telemetry.Default().String()
	return res, nil
}

// RunOne executes a single (composer, rate, seed) run.
func RunOne(cfg Config, composerName string, rate int, seed int64) (RunStats, error) {
	cfg.defaults()
	composer, err := NewComposer(composerName)
	if err != nil {
		return RunStats{}, err
	}
	enableGossip := false
	switch cfg.StatsSource {
	case "", "fetch":
	case "gossip":
		enableGossip = true
	case "stale":
		if cfg.StatsMaxAge == 0 {
			cfg.StatsMaxAge = 30 * time.Second
		}
	default:
		return RunStats{}, fmt.Errorf("experiment: unknown StatsSource %q (want fetch, gossip or stale)", cfg.StatsSource)
	}
	catalog := services.Standard()
	topo := netsim.PlanetLabTopology(netsim.TopologyConfig{
		Nodes:  cfg.Nodes,
		MinBps: cfg.MinBps,
		MaxBps: cfg.MaxBps,
	}, seed)
	sys := deploy.NewSystem(deploy.SystemOptions{
		Nodes:            cfg.Nodes,
		Seed:             seed,
		Topology:         topo,
		MaxLinkBacklog:   cfg.MaxLinkBacklog,
		CongestionJitter: cfg.CongestionJitter,
		Catalog:          catalog,
		ServicesPerNode:  cfg.ServicesPerNode,
		SchedPolicy:      cfg.SchedPolicy,
		ProcJitter:       cfg.ProcJitter,
		TimelyFactor:     cfg.TimelyFactor,
		StatsMaxAge:      cfg.StatsMaxAge,
		KeepDelaySamples: true,
		HeterogeneousCPU: true,
		BackgroundFlows:  cfg.BackgroundFlows,
		Adaptation:       cfg.Adaptation,
		EnableGossip:     enableGossip,
		// 500ms keeps probes from timing out over the topology's worst
		// inter-site RTT (~330ms) and falsely suspecting healthy nodes.
		Gossip: gossip.Config{ProbeTimeout: 500 * time.Millisecond},
	})
	if enableGossip {
		// Let the membership protocol disseminate the initial digests
		// (a few probe rounds plus one anti-entropy sync) so the first
		// compositions already read gossip-fresh statistics.
		sys.Sim.RunUntil(sys.Sim.Now() + 12*time.Second)
	}
	// The request sequence depends only on (seed, rate) so every
	// composer faces the identical workload.
	gen := workload.NewGenerator(workload.Config{
		Services:      catalog.Names(),
		MinServices:   cfg.MinServices,
		MaxServices:   cfg.MaxServices,
		RateUnits:     rate,
		UnitBytes:     cfg.UnitBytes,
		MaxSubstreams: cfg.MaxSubstreams,
	}, seed*1_000_003+int64(rate))

	arrivalRng := rand.New(rand.NewSource(seed*7_654_321 + int64(rate)))
	rs := RunStats{Composer: composerName, Rate: rate, Seed: seed}
	type admitted struct {
		origin int
		req    spec.Request
	}
	var live []admitted
	const rpcTimeout = 10 * time.Second
	for i := 0; i < cfg.Requests; i++ {
		origin := i % cfg.Nodes
		req := gen.Next()
		rs.Submitted++
		done := false
		ok := false
		started := sys.Sim.Now()
		var composedAt time.Duration
		sys.Engines[origin].Submit(req, composer, rpcTimeout, func(g *core.ExecutionGraph, err error) {
			done = true
			ok = err == nil
			composedAt = sys.Sim.Now()
		})
		deadline := sys.Sim.Now() + 2*rpcTimeout
		for !done && sys.Sim.Now() < deadline {
			sys.Sim.RunUntil(sys.Sim.Now() + 100*time.Millisecond)
		}
		if ok {
			rs.Composed++
			rs.SumComposeLatency += composedAt - started
			live = append(live, admitted{origin: origin, req: req})
		}
		gap := cfg.SubmitGap
		if cfg.PoissonArrivals {
			gap = time.Duration(arrivalRng.ExpFloat64() * float64(cfg.SubmitGap))
		}
		sys.Sim.RunUntil(sys.Sim.Now() + gap)
	}
	// Stream for the measurement window.
	sys.Sim.RunUntil(sys.Sim.Now() + cfg.MeasureFor)
	// Harvest sink and source statistics.
	var delays metrics.Histogram
	for _, a := range live {
		eng := sys.Engines[a.origin]
		for l := range a.req.Substreams {
			rs.Emitted += eng.EmittedUnits(a.req.ID, l)
			sink := eng.Sink(a.req.ID, l)
			if sink == nil {
				continue
			}
			rs.Received += sink.Received
			rs.Timely += sink.Timely
			rs.OutOfOrder += sink.OutOfOrder
			rs.SumDelay += sink.TotalDelay
			rs.SumJitter += sink.TotalJitter
			if sink.Delays != nil {
				delays.Merge(sink.Delays)
			}
		}
	}
	rs.DelayP95Ms = delays.Percentile(95)
	rs.Decisions = sys.Journal.Decisions()
	return rs, nil
}

// figureSpec describes how to turn runs into one figure.
type figureSpec struct {
	title  string
	ylabel string
	value  func(RunStats) float64
}

var figureSpecs = map[int]figureSpec{
	6:  {"Figure 6: Number of requests successfully composed", "requests", func(r RunStats) float64 { return float64(r.Composed) }},
	7:  {"Figure 7: Average end-to-end delay", "msec", RunStats.MeanDelayMs},
	8:  {"Figure 8: Fraction of data units delivered", "fraction", RunStats.DeliveredFraction},
	9:  {"Figure 9: Fraction of delivered units that were timely", "fraction", RunStats.TimelyFraction},
	10: {"Figure 10: Fraction of data units delivered out of order", "fraction", RunStats.OutOfOrderFraction},
	11: {"Figure 11: Average jitter", "msec", RunStats.MeanJitterMs},
}

// Figure renders the given paper figure (6–11) as a table: one row per
// rate (in Kbps), one column per composer, averaged over seeds.
func (res *Results) Figure(num int) (*metrics.Table, error) {
	spec, ok := figureSpecs[num]
	if !ok {
		return nil, fmt.Errorf("experiment: no figure %d in the paper's evaluation", num)
	}
	var xs []int
	for _, r := range res.Config.Rates {
		xs = append(xs, rateKbps(r, res.Config.UnitBytes))
	}
	t := metrics.NewTable(spec.title, "rate_kbps", spec.ylabel, xs)
	type key struct {
		composer string
		rate     int
	}
	agg := make(map[key]*metrics.Welford)
	for _, run := range res.Runs {
		k := key{run.Composer, run.Rate}
		w, ok := agg[k]
		if !ok {
			w = &metrics.Welford{}
			agg[k] = w
		}
		w.Add(spec.value(run))
	}
	for _, name := range res.Config.Composers {
		for _, r := range res.Config.Rates {
			if w, ok := agg[key{name, r}]; ok {
				t.Set(name, rateKbps(r, res.Config.UnitBytes), w.Mean())
			}
		}
	}
	return t, nil
}

// DelayP95Table renders the 95th-percentile end-to-end delay per rate and
// composer — a tail-latency companion to Figure 7 that the paper does not
// report.
func (res *Results) DelayP95Table() *metrics.Table {
	var xs []int
	for _, r := range res.Config.Rates {
		xs = append(xs, rateKbps(r, res.Config.UnitBytes))
	}
	t := metrics.NewTable("Delay p95 (companion to Figure 7)", "rate_kbps", "msec", xs)
	type key struct {
		composer string
		rate     int
	}
	agg := make(map[key]*metrics.Welford)
	for _, run := range res.Runs {
		k := key{run.Composer, run.Rate}
		w, ok := agg[k]
		if !ok {
			w = &metrics.Welford{}
			agg[k] = w
		}
		w.Add(run.DelayP95Ms)
	}
	for _, name := range res.Config.Composers {
		for _, r := range res.Config.Rates {
			if w, ok := agg[key{name, r}]; ok {
				t.Set(name, rateKbps(r, res.Config.UnitBytes), w.Mean())
			}
		}
	}
	return t
}

// AllFigures renders figures 6 through 11.
func (res *Results) AllFigures() ([]*metrics.Table, error) {
	var out []*metrics.Table
	for n := 6; n <= 11; n++ {
		t, err := res.Figure(n)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// rateKbps converts a rate in units/sec to Kbps for the given unit size.
func rateKbps(rate, unitBytes int) int { return rate * unitBytes * 8 / 1000 }
