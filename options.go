package rasc

import (
	"fmt"

	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/transport"
)

// ChaosConfig parameterizes transport fault injection — probabilistic
// drops, delays, duplicates and reordering, all driven from a seeded
// source so runs stay reproducible. Enable it with WithChaos; partitions
// are cut and healed at runtime through System.Partition and System.Heal.
type ChaosConfig = transport.ChaosConfig

// Option customizes a simulated deployment built by New.
type Option func(*Options)

// WithNodes sets the deployment size (default 32, the paper's testbed).
func WithNodes(n int) Option { return func(o *Options) { o.Nodes = n } }

// WithSeed seeds the deployment; every run on the same seed is identical.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithCatalog selects the service catalog (default StandardCatalog()).
func WithCatalog(c Catalog) Option { return func(o *Options) { o.Catalog = c } }

// WithServicesPerNode sets how many catalog services each node offers
// (default 5, matching the paper's setup).
func WithServicesPerNode(n int) Option { return func(o *Options) { o.ServicesPerNode = n } }

// WithLinkCapacity bounds per-node access-link capacity in bits/sec
// (default 150 Kbps – 1.2 Mbps, the calibrated experiment range).
func WithLinkCapacity(minBps, maxBps float64) Option {
	return func(o *Options) { o.MinBps, o.MaxBps = minBps, maxBps }
}

// WithSchedPolicy selects the per-node data-unit scheduler: "llf"
// (least-laxity-first, the default), "edf" or "fifo".
func WithSchedPolicy(policy string) Option { return func(o *Options) { o.SchedPolicy = policy } }

// WithGossip toggles the SWIM-style membership protocol on every node:
// service lookups answered from the converged view, composition reading
// gossip-disseminated monitoring digests, and detected node deaths
// triggering immediate recomposition at the origins.
func WithGossip(enabled bool) Option { return func(o *Options) { o.EnableGossip = enabled } }

// AdaptationConfig tunes the event-driven adaptation control plane: the
// periodic delivery-rate check interval and threshold, the composers used
// for incremental and full re-composition, the drop-spike trigger, and
// the controller's hysteresis/cooldown/backoff/concurrency knobs (the
// Control field). The zero value selects the defaults documented on each
// field.
type AdaptationConfig = stream.AdaptationConfig

// WithAdaptation enables the adaptation control plane on every node of
// the deployment. Origins then react to delivered-rate drops, gossip
// member-dead events, transport breaker trips and disseminated drop-ratio
// spikes by incrementally reallocating rate away from degraded hosts
// (falling back to a full recompose when the delta solve is infeasible).
// Pair it with WithGossip to arm the failure-detection triggers.
//
// Adaptation loops reschedule forever, so virtual time must be advanced
// with System.Run for a bounded duration (the event queue never drains).
func WithAdaptation(cfg AdaptationConfig) Option {
	return func(o *Options) { o.Adaptation = &cfg }
}

// TenancyConfig tunes the multi-tenant admission gate: the capacity
// budget (0 derives it from the topology), the tenant and queue limits,
// the guaranteed-share floor, the per-priority fairness weights, and the
// scale knobs — FairShareDeadband suppresses cap notifications for
// sub-threshold relative moves, CapCoalesceWindow collapses fan-out
// bursts into one sweep, PerHostLedger accounts capacity per node (a
// death releases exactly that node's budget, and admission additionally
// probes for a host with placement headroom), and DisableIncremental
// pins the O(n log n) full-recompute allocator instead of the
// incremental one. The zero value selects the defaults documented on
// each field.
type TenancyConfig = tenant.Config

// WithTenancy fronts every node's submission path with one shared
// admission gate. Submissions then pass admission control: a request the
// cluster cannot carry without pushing an equal-or-higher-priority tenant
// below its guaranteed share is queued (and submitted automatically when
// capacity frees) or rejected with ErrAdmissionRejected — instead of
// silently degrading the applications already running. Admitted tenants
// get priority-weighted max-min fair-share rate caps, recomputed on every
// membership or demand change; under contention the lowest-priority
// tenants are rate-capped first and preempted back into the queue last.
// Set Request.Priority to choose an application's class.
func WithTenancy(cfg TenancyConfig) Option {
	return func(o *Options) { o.Tenancy = &cfg }
}

// DataPlaneConfig tunes the per-node data-unit path: BatchUnits is the
// maximum number of units coalesced per destination into one binary wire
// message, FlushInterval bounds how long a unit waits in an open batch,
// and Shards is the number of parallel execution contexts per node. The
// zero value (and BatchUnits ≤ 1 with Shards ≤ 1) selects the legacy
// per-unit path, bit-identical to deployments built without the option.
type DataPlaneConfig = stream.DataPlaneConfig

// DefaultDataPlane returns the tuned batching configuration benchmarked in
// results/BENCH_dataplane.json (32-unit batches, 2ms flush deadline, 4
// execution shards).
func DefaultDataPlane() DataPlaneConfig { return stream.DefaultDataPlane() }

// WithDataPlane selects the batched, sharded data plane on every node:
// sources and forwarders coalesce up to cfg.BatchUnits units per
// destination into one binary wire message (flushed no later than
// cfg.FlushInterval after the first unit), and each node schedules units
// across cfg.Shards execution contexts keyed by (request, substream) so
// per-substream ordering is preserved. Read the aggregate effect with
// Composition.Throughput.
func WithDataPlane(cfg DataPlaneConfig) Option {
	return func(o *Options) { o.DataPlane = &cfg }
}

// FederationConfig shards the deployment into federated clusters:
// Clusters is the cluster count (1 = federated but alone, pinned
// bit-identical to the flat composer), BorderPeers how many nodes per
// cluster exchange boundary summaries, BoundaryBps each inter-cluster
// boundary link's capacity, and ClusterServices optionally restricts
// cluster k's service announcements to ClusterServices[k mod len] — the
// lever that forces cross-cluster hand-offs.
type FederationConfig = deploy.FederationOptions

// WithFederation shards the deployment into federated clusters, each
// running its own composer over gossip-fresh local state. Full monitoring
// digests stay intra-cluster; border nodes exchange compact cluster
// summaries (aggregate headroom, boundary capacity, exported services).
// When a cluster cannot place a request locally, its coordinator
// discovers candidate clusters from the summaries, hands substreams off
// across the boundary, and stitches the per-cluster execution graphs —
// reserving boundary-link capacity on both sides' ledgers and falling
// back to the local-only answer when no remote replies. Implies
// WithGossip; set Request.Cluster to pin a request to one cluster's
// composer regardless of the submitting node.
func WithFederation(cfg FederationConfig) Option {
	return func(o *Options) { o.Federation = &cfg }
}

// WithChaos wraps every node's transport endpoint with seeded fault
// injection. Each node derives its own deterministic seed from the
// deployment seed, and injected delays run on virtual time, so chaotic
// deployments remain exactly reproducible. Partitions are managed at
// runtime with System.Partition, System.Heal and System.HealAll.
func WithChaos(cfg ChaosConfig) Option { return func(o *Options) { o.Chaos = &cfg } }

// New builds a deterministic simulated RASC deployment: N overlay nodes
// joined through Pastry over a PlanetLab-like wide-area network model,
// services registered in the DHT, a stream engine on every node. Options
// override the paper's defaults:
//
//	sys := rasc.New(rasc.WithNodes(16), rasc.WithSeed(7), rasc.WithGossip(true))
func New(opts ...Option) *System {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return newSystem(o)
}

// chaosAt returns node i's fault injector, panicking with a clear message
// when the deployment was built without WithChaos (a programming error,
// like submitting from a nonexistent origin).
func (s *System) chaosAt(i int) *transport.Chaos {
	if s.d.Chaos == nil {
		panic("rasc: fault injection requires WithChaos")
	}
	if i < 0 || i >= len(s.d.Chaos) {
		panic(fmt.Sprintf("rasc: node %d outside deployment of %d nodes", i, len(s.d.Chaos)))
	}
	return s.d.Chaos[i]
}

// Partition cuts nodes i and j off from each other in both directions.
// Control and data traffic between them fails immediately (as a broken
// link would); traffic to every other node is untouched. Requires
// WithChaos.
func (s *System) Partition(i, j int) {
	s.chaosAt(i).Partition(s.d.Nodes[j].Addr())
	s.chaosAt(j).Partition(s.d.Nodes[i].Addr())
}

// Heal reconnects nodes i and j after a Partition. Requires WithChaos.
func (s *System) Heal(i, j int) {
	s.chaosAt(i).Heal(s.d.Nodes[j].Addr())
	s.chaosAt(j).Heal(s.d.Nodes[i].Addr())
}

// HealAll removes every partition in the deployment. Requires WithChaos.
func (s *System) HealAll() {
	if s.d.Chaos == nil {
		panic("rasc: fault injection requires WithChaos")
	}
	for _, c := range s.d.Chaos {
		c.HealAll()
	}
}
