package stream

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the stream engine (metric catalogue rasc_stream_*).
// Counters aggregate over every engine in the process: one engine in a live
// node, all simulated nodes in an experiment.
var (
	telEmitted = telemetry.Default().Counter(
		"rasc_stream_emitted_total",
		"Data units emitted by local sources.")
	telProcessed = telemetry.Default().Counter(
		"rasc_stream_processed_total",
		"Data units whose service execution completed on this node.")
	telForwarded = telemetry.Default().Counter(
		"rasc_stream_forwarded_total",
		"Data units sent downstream after processing.")
	telDelivered = telemetry.Default().Counter(
		"rasc_stream_delivered_total",
		"Data units delivered to local sinks.")
	telStreamDropped = telemetry.Default().CounterVec(
		"rasc_stream_dropped_total",
		"Data units dropped by the stream runtime, by cause.",
		"cause")
	telDeliveryDelay = telemetry.Default().Histogram(
		"rasc_stream_delivery_delay_seconds",
		"End-to-end delay of units delivered to local sinks.",
		telemetry.DefBuckets)

	// telAppTimeBelow is the paper's availability objective as a counter:
	// cumulative time each origin application's delivered rate sat below
	// MinRateFraction of its live requirement, accrued by the adaptation
	// plane's availability sampler.
	telAppTimeBelow = telemetry.Default().FloatCounterVec(
		"rasc_app_time_below_requested_seconds_total",
		"Seconds an application's delivered rate was below the adaptation threshold.",
		"app")

	// Pre-resolved per-cause drop counters: the hot paths touch these, so
	// the label lookup happens once here. Registering them eagerly also
	// makes every cause visible at 0 on /metrics.
	telDropQueueFull = telStreamDropped.With("queue-full")
	telDropLaxity    = telStreamDropped.With("laxity")
	telDropUplink    = telStreamDropped.With("uplink")
	telDropDownlink  = telStreamDropped.With("downlink")

	// Batched data plane (metric catalogue rasc_dataplane_*).
	telDataplaneFlush = telemetry.Default().CounterVec(
		"rasc_dataplane_flush_total",
		"Batched data-plane wire messages sent, by flush cause.",
		"cause")
	telFlushFull     = telDataplaneFlush.With("full")
	telFlushDeadline = telDataplaneFlush.With("deadline")
	telFlushStop     = telDataplaneFlush.With("stop")
	telBatchUnits    = telemetry.Default().Histogram(
		"rasc_dataplane_batch_units",
		"Data units per flushed data-plane batch.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
)

// telBatchFlush increments the flush counter for a cause without a label
// lookup on the hot path.
func telBatchFlush(cause string) {
	switch cause {
	case "full":
		telFlushFull.Inc()
	case "deadline":
		telFlushDeadline.Inc()
	default:
		telFlushStop.Inc()
	}
}

// AppTimeBelowSeconds reads the application's accrued below-threshold
// time from the availability counter — the per-priority isolation
// measurement the tenancy experiments assert on.
func AppTimeBelowSeconds(app string) float64 {
	return telAppTimeBelow.With(app).Value()
}
