package tenant

import (
	"fmt"
	"testing"

	"rasc.dev/rasc/internal/spec"
)

// benchAdmission measures the admission decision latency with 1k
// concurrent tenants already holding allocations — the cost a submission
// pays at the gate before any composition work. Each iteration admits and
// releases one extra tenant.
func benchAdmission(b *testing.B, disableIncremental bool) {
	g := NewGate(Config{CapacityBps: 1e9, QueueCapacity: 64, DisableIncremental: disableIncremental})
	pris := []spec.Priority{spec.Critical, spec.Standard, spec.BestEffort}
	for i := 0; i < 1000; i++ {
		app := fmt.Sprintf("app-%04d", i)
		if dec := g.Admit(app, pris[i%len(pris)], 1e6, nil); dec.State != StateAdmitted {
			b.Fatalf("seed tenant %s not admitted: %+v", app, dec)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := g.Admit("probe", spec.Standard, 1e6, nil)
		if dec.State != StateAdmitted {
			b.Fatalf("probe not admitted: %+v", dec)
		}
		g.Release("probe")
	}
}

// BenchmarkAdmission is the default (incremental) allocator: O(log n)
// treap maintenance per join/leave.
func BenchmarkAdmission(b *testing.B) { benchAdmission(b, false) }

// BenchmarkAdmissionFullRecompute pins the DisableIncremental baseline:
// every decision re-solves fairness over the full population.
func BenchmarkAdmissionFullRecompute(b *testing.B) { benchAdmission(b, true) }

func benchDemands() []Demand {
	demands := make([]Demand, 1000)
	for i := range demands {
		demands[i] = Demand{
			App:    fmt.Sprintf("app-%04d", i),
			Bps:    float64(1+i%17) * 1e5,
			Weight: []float64{1, 2, 4}[i%3],
		}
	}
	return demands
}

// BenchmarkFairShares isolates the water-filling solve at 1k tenants.
func BenchmarkFairShares(b *testing.B) {
	demands := benchDemands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FairShares(demands, 5e8)
	}
}

// BenchmarkFairSharesInto is the zero-alloc variant writing into reused
// buffers — the form the gate's full-recompute path uses.
func BenchmarkFairSharesInto(b *testing.B) {
	demands := benchDemands()
	dst := make([]float64, len(demands))
	var scratch FairShareScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = FairSharesInto(dst, &scratch, demands, 5e8)
	}
}
