package stream_test

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/stream"
)

// hostIndexes maps a graph's placement hosts to engine indexes.
func hostIndexes(s *deploy.System, g *core.ExecutionGraph) map[int]bool {
	byID := map[overlay.ID]int{}
	for i, e := range s.Engines {
		byID[e.Node().ID()] = i
	}
	out := map[int]bool{}
	for _, p := range g.Placements {
		out[byID[p.Host.ID]] = true
	}
	return out
}

func TestKillStopsDelivery(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 21})
	req := simpleRequest("kill-test", 10, "filter")
	g := submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	sink := s.Engines[0].Sink("kill-test", 0)
	if sink.Received == 0 {
		t.Fatal("no delivery before failure")
	}
	// Kill the single filter host.
	hosts := hostIndexes(s, g)
	for i := range hosts {
		s.Kill(i)
	}
	s.Sim.RunUntil(s.Sim.Now() + 2*time.Second) // drain in-flight units
	before := sink.Received
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	if sink.Received != before {
		t.Fatalf("units still delivered through a dead host: %d -> %d", before, sink.Received)
	}
}

func TestAdaptationRecoversFromFailure(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 22})
	origin := s.Engines[0]
	origin.EnableAdaptation(stream.AdaptationConfig{
		Interval:        3 * time.Second,
		MinRateFraction: 0.5,
	})
	defer origin.DisableAdaptation()
	req := simpleRequest("adapt-test", 10, "filter")
	g := submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	// Kill every host of the current graph (but not the origin).
	for i := range hostIndexes(s, g) {
		if i != 0 {
			s.Kill(i)
		}
	}
	// Give adaptation time to notice (one or two intervals), re-compose
	// (stats RPC to the dead host must time out), and stream again.
	s.Sim.RunUntil(s.Sim.Now() + 40*time.Second)
	if origin.Recompositions() == 0 {
		t.Fatal("adaptation never re-composed")
	}
	sink := origin.Sink("adapt-test", 0)
	if sink == nil {
		t.Fatal("no sink after re-composition")
	}
	// Delivery must have resumed: fresh sink accrues units post-recovery.
	recovered := sink.Received
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	if sink.Received <= recovered {
		t.Fatalf("no delivery after re-composition: %d -> %d", recovered, sink.Received)
	}
}

func TestAdaptationLeavesHealthyStreamsAlone(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 23})
	origin := s.Engines[0]
	origin.EnableAdaptation(stream.AdaptationConfig{Interval: 2 * time.Second})
	defer origin.DisableAdaptation()
	req := simpleRequest("healthy", 10, "filter", "encrypt")
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 30*time.Second)
	if origin.Recompositions() != 0 {
		t.Fatalf("healthy stream re-composed %d times", origin.Recompositions())
	}
	if sink := origin.Sink("healthy", 0); sink.Received == 0 {
		t.Fatal("healthy stream stopped delivering")
	}
}

func TestDisableAdaptationStopsChecks(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 24})
	origin := s.Engines[0]
	origin.EnableAdaptation(stream.AdaptationConfig{Interval: 2 * time.Second})
	req := simpleRequest("disabled", 10, "filter")
	g := submit(t, s, 0, req, &core.MinCost{})
	origin.DisableAdaptation()
	for i := range hostIndexes(s, g) {
		if i != 0 {
			s.Kill(i)
		}
	}
	s.Sim.RunUntil(s.Sim.Now() + 20*time.Second)
	if origin.Recompositions() != 0 {
		t.Fatal("disabled adaptation still re-composed")
	}
}

// upgradeTopology hand-crafts scarcity: a well-provisioned origin (node
// 0), one capable worker (node 1) and six tiny workers, all offering
// "filter".
func upgradeTopology() *netsim.Topology {
	const n = 8
	topo := &netsim.Topology{
		UpBps:         make([]float64, n),
		DownBps:       make([]float64, n),
		LatencyMatrix: make([][]time.Duration, n),
		Site:          make([]int, n),
	}
	for i := 0; i < n; i++ {
		topo.LatencyMatrix[i] = make([]time.Duration, n)
		for j := 0; j < n; j++ {
			if i != j {
				topo.LatencyMatrix[i][j] = 10 * time.Millisecond
			}
		}
		switch i {
		case 0:
			topo.UpBps[i], topo.DownBps[i] = 3e6, 3e6 // origin
		case 1:
			topo.UpBps[i], topo.DownBps[i] = 1e6, 1e6 // big worker: 100 u/s
		default:
			topo.UpBps[i], topo.DownBps[i] = 2e4, 2e4 // tiny: 2 u/s
		}
	}
	return topo
}

func TestAdaptationUpgradesBestEffortStream(t *testing.T) {
	// One big worker carries the load; a competitor occupies most of it,
	// so the best-effort request is admitted below its desired rate.
	// When the competitor stops, the upgrade path must restore the full
	// rate.
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes: 8, Seed: 25,
		Topology:        upgradeTopology(),
		ServiceNames:    []string{"filter"},
		ServicesPerNode: 1,
	})
	origin := s.Engines[0]
	// The origin must not host components itself (its big links would
	// absorb the whole request): withdraw its registration.
	s.Dirs[0].Withdraw("filter")
	s.Sim.Run()
	// The competitor (origin = the big worker itself) occupies ~85 of
	// the big worker's ~100 units/sec.
	comp := simpleRequest("competitor", 85, "filter")
	var compGraph *core.ExecutionGraph
	done := false
	s.Engines[1].Submit(comp, &core.MinCost{BestEffortFraction: 0.3}, 10*time.Second, func(g *core.ExecutionGraph, err error) {
		done = true
		compGraph = g
	})
	for j := 0; j < 200 && !done; j++ {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if compGraph == nil {
		t.Fatal("competitor not admitted")
	}
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)

	// Best-effort submit for 40 units/sec: the big worker is mostly
	// taken and the tiny workers add ~12, so admission lands well below
	// 40.
	const desiredRate = 40
	req := simpleRequest("upgrade-me", desiredRate, "filter")
	done = false
	var g *core.ExecutionGraph
	origin.Submit(req, &core.MinCost{BestEffortFraction: 0.1}, 10*time.Second, func(gr *core.ExecutionGraph, err error) {
		done = true
		g = gr
	})
	for j := 0; j < 200 && !done; j++ {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if g == nil {
		t.Fatal("best-effort admission failed outright")
	}
	admitted := g.Request.Substreams[0].Rate
	if admitted >= desiredRate {
		t.Fatalf("admission landed at full rate %d; contention broken", admitted)
	}
	origin.EnableAdaptation(stream.AdaptationConfig{Interval: 4 * time.Second})
	defer origin.DisableAdaptation()

	// Free capacity and wait for upgrade attempts (stats windows must
	// also see the competitor's traffic disappear).
	s.Engines[1].Teardown(compGraph, 5*time.Second)
	s.Sim.RunUntil(s.Sim.Now() + 60*time.Second)

	if origin.Recompositions() == 0 {
		t.Fatal("upgrade never attempted")
	}
	// The sink's period reflects the admitted rate: after the upgrade it
	// must correspond to the full desired rate.
	sink := origin.Sink("upgrade-me", 0)
	if sink == nil {
		t.Fatal("sink missing after upgrade")
	}
	wantPeriod := time.Second / desiredRate
	if sink.Period != wantPeriod {
		t.Fatalf("post-upgrade period = %v, want %v (rate %d)", sink.Period, wantPeriod, desiredRate)
	}
	// And it must actually deliver at the upgraded rate.
	before := sink.Received
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	gotRate := float64(origin.Sink("upgrade-me", 0).Received-before) / 10
	if gotRate < 0.7*desiredRate {
		t.Fatalf("post-upgrade delivery rate %.1f, want ≈%d", gotRate, desiredRate)
	}
}
