package trace

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the tracing plane (metric catalogues rasc_trace_*
// and rasc_decision*). Decision latencies are observed on the
// deployment's clock — virtual time in simulations — so histograms
// compare directly across simulated and live runs.
var (
	telEvicted = telemetry.Default().Counter(
		"rasc_trace_evicted_total",
		"Per-unit trace events overwritten by the bounded ring buffer; non-zero means reconstructed timelines may be truncated.")
	telJournalEvicted = telemetry.Default().Counter(
		"rasc_decision_journal_evicted_total",
		"Completed decisions overwritten by the bounded decision journal.")
	telDecisions = telemetry.Default().CounterVec(
		"rasc_decisions_total",
		"Completed adaptation decisions by trigger event kind and outcome.",
		"trigger", "outcome")
	telDecisionLatency = telemetry.Default().HistogramVec(
		"rasc_decision_latency_seconds",
		"Trigger-to-completion latency of adaptation decisions by trigger event kind.",
		decisionBuckets, "trigger")
	telDecisionConvergence = telemetry.Default().HistogramVec(
		"rasc_decision_convergence_seconds",
		"Trigger-to-convergence latency (delivered rate back at or above threshold) of successful adaptation decisions by trigger event kind.",
		decisionBuckets, "trigger")
)

// decisionBuckets span 10ms to ~80s: detection-dominated decisions land in
// the seconds, pure solve-and-apply chains in the tens of milliseconds.
var decisionBuckets = telemetry.ExpBuckets(0.01, 2, 14)
