package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// format, families sorted by name, series in creation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// String renders the registry as Prometheus text (for snapshots and logs).
func (r *Registry) String() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler returns an http.Handler serving the registry at its mount point
// (conventionally /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}

// write renders one family: HELP, TYPE, then every series.
func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	children := make([]*child, 0, len(f.order))
	for _, key := range f.order {
		children = append(children, f.children[key])
	}
	f.mu.Unlock()
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		switch f.kind {
		case kindCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labelNames, c.labelValues, "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(c.counter.Value(), 10))
			b.WriteByte('\n')
		case kindFloatCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labelNames, c.labelValues, "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(c.floatCounter.Value()))
			b.WriteByte('\n')
		case kindGauge:
			v := 0.0
			if c.gaugeFn != nil {
				v = c.gaugeFn()
			} else {
				v = c.gauge.Value()
			}
			b.WriteString(f.name)
			writeLabels(b, f.labelNames, c.labelValues, "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(v))
			b.WriteByte('\n')
		case kindHistogram:
			cum, total, sum := c.histogram.snapshot()
			for i, bound := range c.histogram.bounds {
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labelNames, c.labelValues, formatFloat(bound))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum[i], 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labelNames, c.labelValues, "+Inf")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(total, 10))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labelNames, c.labelValues, "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(sum))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labelNames, c.labelValues, "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(total, 10))
			b.WriteByte('\n')
		}
	}
}

// writeLabels renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label.
func writeLabels(b *strings.Builder, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
