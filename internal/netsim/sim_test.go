package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSimulatorRunsEventsInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSimulatorSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	s.Schedule(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(2*time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 3*time.Millisecond {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSimulatorNegativeDelayClamped(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved backwards or forwards: %v", s.Now())
	}
}

func TestSimulatorAtPastClampsToNow(t *testing.T) {
	s := New(1)
	var at time.Duration = -1
	s.Schedule(10*time.Millisecond, func() {
		s.At(2*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("past-scheduled event ran at %v, want 10ms", at)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("after Run, ran %d events, want 10", count)
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	s := New(1)
	s.RunUntil(time.Second)
	if s.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if i == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("ran %d events before stop, want 3", count)
	}
}

// Property: for any set of non-negative delays, Run visits them in
// non-decreasing time order and finishes with the clock at the max delay.
func TestSimulatorOrderProperty(t *testing.T) {
	prop := func(delaysMs []uint16) bool {
		s := New(42)
		var max time.Duration
		var seen []time.Duration
		for _, d := range delaysMs {
			delay := time.Duration(d) * time.Millisecond
			if delay > max {
				max = delay
			}
			s.Schedule(delay, func() { seen = append(seen, s.Now()) })
		}
		s.Run()
		if len(seen) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(delaysMs) == 0 || s.Now() == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
