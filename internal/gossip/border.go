package gossip

import (
	"encoding/json"
	"sort"
	"time"

	"rasc.dev/rasc/internal/overlay"
)

// The federation boundary protocol: full SWIM digests stay inside one
// cluster, and a small set of border peers periodically exchange compact
// ClusterSummary messages across cluster boundaries — aggregate headroom,
// boundary-link capacity and the exported service catalog. The exchange
// is push-pull (one round trip refreshes both sides), so a border node
// learns every remote cluster it is configured against within one
// SummaryInterval.

// appSummary is the overlay RPC application of the border exchange.
const appSummary = "gossip.summary"

// ClusterSummary is the compact cross-boundary view of one cluster: what
// a border peer advertises to its remote counterparts instead of the full
// membership.
type ClusterSummary struct {
	// Cluster names the summarized cluster.
	Cluster string `json:"cluster"`
	// Version orders summaries from the same border origin.
	Version uint64 `json:"v"`
	// At is the origin border's local clock at production time
	// (informational; cross-cluster clocks are not comparable).
	At time.Duration `json:"at"`
	// Members is the number of alive members in the cluster view.
	Members int `json:"members"`
	// AggAvailInBps and AggAvailOutBps sum the alive members' available
	// inbound/outbound bandwidth from their freshest digests — the
	// headroom a federation coordinator ranks remote candidates by.
	AggAvailInBps  float64 `json:"aggAvailInBps"`
	AggAvailOutBps float64 `json:"aggAvailOutBps"`
	// BoundaryBps is the boundary-link capacity the cluster advertises.
	BoundaryBps float64 `json:"boundaryBps,omitempty"`
	// Services is the union of the alive members' service offerings,
	// sorted — the cluster's exported catalog.
	Services []string `json:"services,omitempty"`
	// Border identifies the border peer that produced the summary;
	// hand-off handshakes are addressed to it.
	Border overlay.NodeInfo `json:"border"`
}

// Offers reports whether the summarized cluster exports service.
func (s ClusterSummary) Offers(service string) bool {
	for _, svc := range s.Services {
		if svc == service {
			return true
		}
	}
	return false
}

// remoteSummary is a held remote summary plus its local receipt time (the
// freshness clock TTL expiry runs on).
type remoteSummary struct {
	summary    ClusterSummary
	receivedAt time.Duration
}

// summaryMsg carries one summary in each direction of an exchange.
type summaryMsg struct {
	Summary ClusterSummary `json:"summary"`
}

// OnSummary registers a callback fired (on the protocol goroutine)
// whenever a remote cluster summary is received or refreshed.
func (g *Gossip) OnSummary(fn func(ClusterSummary)) { g.onSummary = append(g.onSummary, fn) }

// OnSummaryLost registers a callback fired when a remote cluster's
// summary expires (no refresh within SummaryTTL) — the signal behind the
// control plane's remote_candidate_lost event.
func (g *Gossip) OnSummaryLost(fn func(cluster string)) {
	g.onSummaryLost = append(g.onSummaryLost, fn)
}

// LocalSummary condenses the cluster-scoped view into the summary this
// node would advertise across the boundary.
func (g *Gossip) LocalSummary() ClusterSummary {
	g.summaryVersion++
	s := ClusterSummary{
		Cluster:     g.cfg.Cluster,
		Version:     g.summaryVersion,
		At:          g.clk.Now(),
		BoundaryBps: g.cfg.BoundaryBps,
		Border:      g.node.Info(),
	}
	services := map[string]bool{}
	for _, m := range g.members {
		if m.State != StateAlive {
			continue
		}
		s.Members++
		if m.Digest.Version == 0 {
			continue
		}
		s.AggAvailInBps += m.Digest.Report.AvailIn()
		s.AggAvailOutBps += m.Digest.Report.AvailOut()
		for _, svc := range m.Digest.Services {
			services[svc] = true
		}
	}
	for svc := range services {
		s.Services = append(s.Services, svc)
	}
	sort.Strings(s.Services)
	return s
}

// Summaries returns the held remote cluster summaries, sorted by cluster
// name.
func (g *Gossip) Summaries() []ClusterSummary {
	out := make([]ClusterSummary, 0, len(g.summaries))
	for _, rs := range g.summaries {
		out = append(out, rs.summary)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cluster < out[j].Cluster })
	return out
}

// SummaryFor returns the held summary for one remote cluster.
func (g *Gossip) SummaryFor(cluster string) (ClusterSummary, bool) {
	if rs, ok := g.summaries[cluster]; ok {
		return rs.summary, true
	}
	return ClusterSummary{}, false
}

// summaryRound runs one border period: expire stale remote summaries,
// then push-pull a fresh exchange with every configured remote border.
func (g *Gossip) summaryRound() {
	g.expireSummaries()
	local := g.LocalSummary()
	body := g.encode(summaryMsg{Summary: local})
	for _, peer := range g.cfg.BorderPeers {
		if peer.Addr == "" || peer.ID == g.node.ID() {
			continue
		}
		g.node.Request(peer.Addr, appSummary, body, g.cfg.SummaryInterval/2, func(resp []byte, err error) {
			if err != nil {
				return
			}
			var m summaryMsg
			if json.Unmarshal(resp, &m) == nil {
				g.mergeSummary(m.Summary)
			}
		})
	}
}

// expireSummaries drops remote summaries older than SummaryTTL and tells
// the subscribers which clusters went dark.
func (g *Gossip) expireSummaries() {
	now := g.clk.Now()
	var lost []string
	for cluster, rs := range g.summaries {
		if now-rs.receivedAt > g.cfg.SummaryTTL {
			lost = append(lost, cluster)
		}
	}
	sort.Strings(lost)
	for _, cluster := range lost {
		delete(g.summaries, cluster)
		telSummariesHeld.Set(float64(len(g.summaries)))
		for _, fn := range g.onSummaryLost {
			fn(cluster)
		}
	}
}

// mergeSummary records a received remote summary, refreshing its TTL.
// Same-cluster summaries (echoes of our own) are ignored.
func (g *Gossip) mergeSummary(s ClusterSummary) {
	if s.Cluster == "" || s.Cluster == g.cfg.Cluster {
		return
	}
	held, ok := g.summaries[s.Cluster]
	// A newer version from the same border, or any summary from a
	// different border, wins; a stale duplicate only refreshes the TTL.
	if ok && held.summary.Border.ID == s.Border.ID && s.Version < held.summary.Version {
		held.receivedAt = g.clk.Now()
		return
	}
	g.summaries[s.Cluster] = &remoteSummary{summary: s, receivedAt: g.clk.Now()}
	telSummaryExchanges.Inc()
	telSummariesHeld.Set(float64(len(g.summaries)))
	for _, fn := range g.onSummary {
		fn(s)
	}
}

// onSummaryExchange answers a border push-pull: merge the caller's
// summary, reply with ours.
func (g *Gossip) onSummaryExchange(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var m summaryMsg
	if err := json.Unmarshal(body, &m); err != nil {
		respond(nil, "gossip: bad summary: "+err.Error())
		return
	}
	if g.cfg.Cluster == "" {
		respond(nil, "gossip: not cluster-scoped")
		return
	}
	g.mergeSummary(m.Summary)
	respond(g.encode(summaryMsg{Summary: g.LocalSummary()}), "")
}
