package sched

import (
	"time"

	"rasc.dev/rasc/internal/telemetry"
)

// Runtime telemetry for the scheduling hot path (metric catalogue
// rasc_sched_*). Families are registered once at package init; each policy
// instance caches its label-resolved handles at construction so Push/Next
// pay only atomic adds.
var (
	telScheduled = telemetry.Default().CounterVec(
		"rasc_sched_scheduled_total",
		"Data units handed to execution by the node scheduler.",
		"policy")
	telDropped = telemetry.Default().CounterVec(
		"rasc_sched_dropped_total",
		"Data units dropped at scheduling time because their laxity went negative.",
		"policy")
	telRejected = telemetry.Default().CounterVec(
		"rasc_sched_rejected_total",
		"Data units rejected at enqueue because the ready queue was full.",
		"policy")
	telQueueDepth = telemetry.Default().GaugeVec(
		"rasc_sched_queue_depth",
		"Data units currently queued, summed over live queues of the policy.",
		"policy")
	telLaxity = telemetry.Default().HistogramVec(
		"rasc_sched_laxity_seconds",
		"Laxity of units at scheduling decisions (negative buckets are drops).",
		laxityBuckets, "policy")
)

// laxityBuckets span the negative (missed) through positive (slack) laxity
// range seen at scheduling decisions.
var laxityBuckets = []float64{-1, -0.1, -0.01, -0.001, 0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// policyMetrics is the per-policy handle set.
type policyMetrics struct {
	scheduled *telemetry.Counter
	dropped   *telemetry.Counter
	rejected  *telemetry.Counter
	depth     *telemetry.Gauge
	laxity    *telemetry.Histogram
}

func newPolicyMetrics(policy string) policyMetrics {
	return policyMetrics{
		scheduled: telScheduled.With(policy),
		dropped:   telDropped.With(policy),
		rejected:  telRejected.With(policy),
		depth:     telQueueDepth.With(policy),
		laxity:    telLaxity.With(policy),
	}
}

// onPush records a successful enqueue.
func (m *policyMetrics) onPush() { m.depth.Add(1) }

// onReject records an enqueue refused for capacity.
func (m *policyMetrics) onReject() { m.rejected.Inc() }

// onDrop records a unit dropped for negative laxity at time now.
func (m *policyMetrics) onDrop(u *Unit, now time.Duration) {
	m.dropped.Inc()
	m.depth.Add(-1)
	m.laxity.Observe(u.Laxity(now).Seconds())
}

// onRun records a unit picked to execute at time now.
func (m *policyMetrics) onRun(u *Unit, now time.Duration) {
	m.scheduled.Inc()
	m.depth.Add(-1)
	m.laxity.Observe(u.Laxity(now).Seconds())
}
