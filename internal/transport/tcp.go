package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// maxFrameSize bounds a single wire frame (guards against corrupt length
// prefixes).
const maxFrameSize = 16 << 20

// tcpFrame is the on-the-wire frame: a 4-byte big-endian length followed
// by this JSON document.
type tcpFrame struct {
	From Addr    `json:"from"`
	Msg  Message `json:"msg"`
}

// TCPEndpoint is a transport endpoint over real TCP sockets. Outbound
// connections are cached per destination; inbound frames are delivered
// from per-connection reader goroutines, so the handler must be safe for
// concurrent invocation (the live runtime serializes onto an actor loop).
type TCPEndpoint struct {
	listener net.Listener
	addr     Addr

	mu          sync.Mutex
	conns       map[Addr]net.Conn
	allConns    map[net.Conn]bool
	handler     Handler
	dropHandler Handler
	closed      bool
	wg          sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCP binds a TCP endpoint on listenAddr ("host:port"; port 0 picks a
// free port). The returned endpoint's Addr is the actual bound address.
func NewTCP(listenAddr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	e := &TCPEndpoint{
		listener: ln,
		addr:     Addr(ln.Addr().String()),
		conns:    make(map[Addr]net.Conn),
		allConns: make(map[net.Conn]bool),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's bound address.
func (e *TCPEndpoint) Addr() Addr { return e.addr }

// SetHandler installs the inbound message handler.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// SetDropHandler is a no-op: TCP delivers reliably, and kernel-level
// datagram drops are not observable on this transport.
func (e *TCPEndpoint) SetDropHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dropHandler = h
}

// Send transmits msg to the destination, dialing and caching a connection
// on first use.
func (e *TCPEndpoint) Send(to Addr, msg Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	conn, ok := e.conns[to]
	e.mu.Unlock()
	if !ok {
		c, err := net.Dial("tcp", string(to))
		if err != nil {
			telTCPConnErr.Inc()
			return fmt.Errorf("%w: %s: %v", ErrUnknownAddr, to, err)
		}
		e.mu.Lock()
		if existing, ok := e.conns[to]; ok {
			e.mu.Unlock()
			c.Close()
			conn = existing
		} else {
			e.conns[to] = c
			e.allConns[c] = true
			e.mu.Unlock()
			conn = c
			// Frames may also arrive on this outbound connection.
			e.wg.Add(1)
			go e.readLoop(c)
		}
	}
	body, err := json.Marshal(tcpFrame{From: e.addr, Msg: msg})
	if err != nil {
		return err
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, err := conn.Write(prefix[:]); err != nil {
		e.dropConnLocked(to, conn)
		return err
	}
	if _, err := conn.Write(body); err != nil {
		e.dropConnLocked(to, conn)
		return err
	}
	telTCPOut.Inc()
	telTCPOutBytes.Add(uint64(len(prefix) + len(body)))
	return nil
}

func (e *TCPEndpoint) dropConnLocked(to Addr, conn net.Conn) {
	if e.conns[to] == conn {
		delete(e.conns, to)
	}
	conn.Close()
}

// Close shuts the listener and every connection down and waits for reader
// goroutines to exit.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	err := e.listener.Close()
	for c := range e.allConns {
		c.Close()
	}
	e.conns = map[Addr]net.Conn{}
	e.allConns = map[net.Conn]bool{}
	e.mu.Unlock()
	e.wg.Wait()
	return err
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.allConns[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.allConns, conn)
		e.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	for {
		var prefix [4]byte
		if _, err := readFull(r, prefix[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(prefix[:])
		if n > maxFrameSize {
			conn.Close()
			return
		}
		body := make([]byte, n)
		if _, err := readFull(r, body); err != nil {
			return
		}
		var frame tcpFrame
		if err := json.Unmarshal(body, &frame); err != nil {
			continue
		}
		telTCPIn.Inc()
		telTCPInBytes.Add(uint64(len(prefix) + len(body)))
		e.mu.Lock()
		h := e.handler
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(frame.From, frame.Msg)
		}
	}
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
