// Command rasc-sim composes and runs one stream-processing request on a
// simulated RASC deployment and reports the composition and delivery
// statistics.
//
// Example:
//
//	rasc-sim -nodes 32 -seed 7 -composer mincost -services filter,transcode -rate 100 -duration 30s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rasc.dev/rasc"
	"rasc.dev/rasc/internal/experiment"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/workload"
)

// replayWorkload submits every request of a saved workload file from
// round-robin origins and prints per-request plus aggregate results.
func replayWorkload(sys *rasc.System, path string, composer rasc.Composer, duration time.Duration) {
	reqs, err := workload.LoadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workload: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replaying %d requests from %s via %s\n", len(reqs), path, composer)
	type liveReq struct {
		comp *rasc.Composition
		id   string
	}
	var live []liveReq
	for i, req := range reqs {
		origin := i % sys.Nodes()
		comp, err := sys.Submit(origin, req, composer)
		if err != nil {
			fmt.Printf("  %-10s rejected: %v\n", req.ID, err)
			continue
		}
		fmt.Printf("  %-10s composed onto %d hosts\n", req.ID, comp.NumHosts())
		live = append(live, liveReq{comp: comp, id: req.ID})
		sys.Run(400 * time.Millisecond)
	}
	sys.Run(duration)
	var agg rasc.DeliveryStats
	for _, lr := range live {
		s := lr.comp.Stats()
		agg.Emitted += s.Emitted
		agg.Received += s.Received
		agg.Timely += s.Timely
		agg.OutOfOrder += s.OutOfOrder
		fmt.Printf("  %-10s delivered %.1f%% (delay %v)\n",
			lr.id, 100*s.DeliveredFraction(), s.MeanDelay.Round(time.Millisecond))
	}
	fmt.Printf("\naggregate: composed %d/%d, delivered %.1f%%, timely %.1f%%\n",
		len(live), len(reqs), 100*agg.DeliveredFraction(), 100*agg.TimelyFraction())
}

func main() {
	var (
		nodes    = flag.Int("nodes", 32, "deployment size")
		seed     = flag.Int64("seed", 1, "simulation seed")
		composer = flag.String("composer", "mincost", "composer: mincost|mincost-nosplit|greedy|random|lp")
		svcList  = flag.String("services", "filter,transcode", "comma-separated service chain")
		rateKbps = flag.Int("rate", 100, "requested rate in Kbps")
		duration = flag.Duration("duration", 30*time.Second, "virtual streaming time")
		origin   = flag.Int("origin", 0, "origin node index")
		unit     = flag.Int("unit", 1250, "data unit size in bytes")
		traceOn  = flag.Bool("trace", false, "trace per-unit events and print a sample timeline")
		telOut   = flag.String("telemetry", "", "dump a final runtime telemetry snapshot (Prometheus text format) to this file, or \"-\" for stdout")
		decOut   = flag.String("decisions", "", "dump the adaptation decision journal (JSON) to this file, or \"-\" for stdout as readable text")
		workFile = flag.String("workload", "", "replay a JSON workload file instead of a single request")
		dotOut   = flag.String("dot", "", "write the execution graph in Graphviz dot format to this file")
		gossipOn = flag.Bool("gossip", false, "run the gossip membership protocol: view-backed lookups, gossip-fresh stats, failure-triggered recomposition")

		adaptIvl  = flag.Duration("adapt-interval", 0, "enable the adaptation control plane with this delivery-rate check period (0: disabled; pair with -gossip for failure triggers)")
		adaptFull = flag.Bool("adapt-full-only", false, "disable incremental reallocation: every adaptation action tears down and re-composes in full")

		priority     = flag.String("priority", "", "tenancy class of the submitted request: critical, standard or best-effort")
		admission    = flag.Bool("admission", false, "front submissions with the multi-tenant admission gate (priority classes, fair-share caps, admission queue)")
		admissionBps = flag.Float64("admission-bps", 0, "admission gate capacity budget in bits/sec (0: derive from the topology's aggregate access capacity)")
		maxTenants   = flag.Int("max-tenants", 0, "bound on concurrently admitted applications (0: unlimited; implies -admission)")
		fairDeadband = flag.Float64("fair-deadband", 0, "suppress fair_share_changed notifications while a tenant's cap moves less than this relative fraction (0: notify on every move)")
		capCoalesce  = flag.Duration("cap-coalesce", 0, "collapse cap fan-out bursts within this window into one sweep carrying the final caps (0: immediate fan-out)")
		hostLedger   = flag.Bool("per-host-ledger", false, "account admission capacity per simulated node instead of one aggregate budget (implies -admission)")

		clusters    = flag.Int("clusters", 0, "shard the deployment into N federated clusters with cluster-scoped composers and boundary hand-offs (0: flat; implies -gossip)")
		borderNodes = flag.Int("border-peers", 0, "border nodes per cluster exchanging boundary summaries (0: default 1)")
		boundaryBps = flag.Float64("boundary-bps", 0, "inter-cluster boundary-link capacity in bits/sec (0: default 100 Mbps)")
		clusterSvcs = flag.String("cluster-services", "", "per-cluster service restrictions as semicolon-separated comma lists, e.g. 'filter,encrypt;transcode' (empty: every cluster announces from the full catalog)")
		reqCluster  = flag.String("cluster", "", "pin the submitted request to this cluster's composer (e.g. c1; empty: the origin node's own cluster)")

		runs     = flag.Int("runs", 1, "repeat the scenario on N independent deployments seeded seed..seed+N-1")
		parallel = flag.Int("parallel", 0, "worker-pool size for -runs > 1 (0 = NumCPU, 1 = serial)")

		chaosDrop    = flag.Float64("chaos-drop", 0, "probability each transport message is dropped")
		chaosDelay   = flag.Duration("chaos-delay", 0, "fixed extra delay injected into every transport message")
		chaosJitter  = flag.Duration("chaos-delay-jitter", 0, "uniform extra delay in [0, jitter) on top of -chaos-delay")
		chaosDup     = flag.Float64("chaos-dup", 0, "probability each transport message is duplicated")
		chaosReorder = flag.Float64("chaos-reorder", 0, "probability each transport message is held back and overtaken")

		batchUnits = flag.Int("batch-units", 0, "coalesce up to N data units per destination into one binary wire message (0 or 1: legacy per-unit path)")
		flushIvl   = flag.Duration("flush-interval", 0, "flush an open data-unit batch no later than this after its first unit (0: default 2ms when batching)")
		shards     = flag.Int("shards", 0, "parallel execution contexts per node, keyed by (request, substream) (0 or 1: single context)")
	)
	flag.Parse()

	cmp, err := rasc.ParseComposer(*composer)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pri, err := rasc.ParsePriority(*priority)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tenancyOn := *admission || *maxTenants > 0 || *hostLedger
	chaos := rasc.ChaosConfig{
		Drop:        *chaosDrop,
		Delay:       *chaosDelay,
		DelayJitter: *chaosJitter,
		Duplicate:   *chaosDup,
		Reorder:     *chaosReorder,
	}
	mkOpts := func(seed int64) []rasc.Option {
		o := []rasc.Option{rasc.WithNodes(*nodes), rasc.WithSeed(seed), rasc.WithGossip(*gossipOn)}
		if chaos.Active() {
			o = append(o, rasc.WithChaos(chaos))
		}
		if *adaptIvl > 0 {
			cfg := rasc.AdaptationConfig{Interval: *adaptIvl}
			cfg.Control.DisableIncremental = *adaptFull
			o = append(o, rasc.WithAdaptation(cfg))
		}
		if tenancyOn {
			o = append(o, rasc.WithTenancy(rasc.TenancyConfig{
				CapacityBps:       *admissionBps,
				MaxTenants:        *maxTenants,
				FairShareDeadband: *fairDeadband,
				CapCoalesceWindow: *capCoalesce,
				PerHostLedger:     *hostLedger,
			}))
		}
		if *clusters > 0 {
			fed := rasc.FederationConfig{
				Clusters:    *clusters,
				BorderPeers: *borderNodes,
				BoundaryBps: *boundaryBps,
			}
			if *clusterSvcs != "" {
				for _, group := range strings.Split(*clusterSvcs, ";") {
					fed.ClusterServices = append(fed.ClusterServices, strings.Split(group, ","))
				}
			}
			o = append(o, rasc.WithFederation(fed))
		}
		if *batchUnits > 1 || *shards > 1 {
			o = append(o, rasc.WithDataPlane(rasc.DataPlaneConfig{
				BatchUnits:    *batchUnits,
				FlushInterval: *flushIvl,
				Shards:        *shards,
			}))
		}
		return o
	}
	chain := strings.Split(*svcList, ",")
	rateUnits := *rateKbps * 1000 / (*unit * 8)
	if rateUnits < 1 {
		rateUnits = 1
	}
	req := rasc.Request{
		ID:         "cli-request",
		UnitBytes:  *unit,
		Substreams: []rasc.Substream{{Services: chain, Rate: rateUnits}},
		Priority:   pri,
		Cluster:    *reqCluster,
	}
	if *runs > 1 {
		if *traceOn || *workFile != "" || *dotOut != "" {
			fmt.Fprintln(os.Stderr, "-runs > 1 is incompatible with -trace, -workload and -dot")
			os.Exit(2)
		}
		warm := time.Duration(0)
		if *clusters > 1 {
			warm = 30 * time.Second
		}
		multiRun(*runs, *parallel, *seed, *origin, *duration, warm, req, cmp, mkOpts)
		return
	}
	// A federated deployment needs the border summary exchange and digest
	// dissemination to converge before cross-cluster discovery can answer.
	warmup := time.Duration(0)
	if *clusters > 1 {
		warmup = 30 * time.Second
	}
	sys := rasc.New(mkOpts(*seed)...)
	sys.Run(warmup)
	var buf *rasc.TraceBuffer
	if *traceOn {
		buf = sys.EnableTracing(1_000_000)
	}
	if *workFile != "" {
		replayWorkload(sys, *workFile, cmp, *duration)
		dumpTenants(sys)
		dumpTelemetry(sys, *telOut)
		dumpDecisions(sys, *decOut)
		return
	}
	fmt.Printf("submitting %v at %d Kbps (%d units/sec) via %s from node %d\n",
		chain, *rateKbps, rateUnits, cmp, *origin)
	comp, err := sys.Submit(*origin, req, cmp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "composition failed: %v\n", err)
		os.Exit(1)
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(comp.Graph.DOT()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote execution graph to %s\n", *dotOut)
	}
	fmt.Printf("\ncomposed onto %d hosts:\n", comp.NumHosts())
	for _, p := range comp.Placements() {
		fmt.Printf("  substream %d stage %d %-12s -> %s (%.0f units/sec)\n",
			p.Substream, p.Stage, p.Service, p.Host.Addr, p.Rate)
	}
	sys.Run(*duration)
	s := comp.Stats()
	fmt.Printf("\nafter %v of streaming:\n", *duration)
	fmt.Printf("  emitted      %d units\n", s.Emitted)
	fmt.Printf("  delivered    %d units (%.1f%%)\n", s.Received, 100*s.DeliveredFraction())
	fmt.Printf("  timely       %.1f%% of delivered\n", 100*s.TimelyFraction())
	fmt.Printf("  out of order %d units\n", s.OutOfOrder)
	fmt.Printf("  mean delay   %v\n", s.MeanDelay.Round(time.Millisecond))
	fmt.Printf("  mean jitter  %v\n", s.MeanJitter.Round(time.Millisecond))

	if buf != nil {
		fmt.Printf("\ntrace: %d events recorded\n", buf.Total())
		fmt.Println("\nper-hop latency (substream 0):")
		for _, sl := range buf.StageLatencies(req.ID, 0) {
			fmt.Printf("  -> stage %d: %v mean over %d units\n", sl.Stage, sl.Mean.Round(time.Millisecond), sl.Count)
		}
		if drops := buf.DropsByCause(); len(drops) > 0 {
			fmt.Println("\ndrops by cause:")
			for cause, n := range drops {
				fmt.Printf("  %-10s %d\n", cause, n)
			}
		}
		fmt.Println("\nsample unit timeline (seq 50):")
		fmt.Print(trace.FormatTimeline(buf.Timeline(req.ID, 0, 50)))
	}
	dumpTenants(sys)
	dumpFederation(sys, *origin, *clusters)
	dumpTelemetry(sys, *telOut)
	dumpDecisions(sys, *decOut)
}

// multiRun repeats the single-request scenario on n independent
// deployments seeded base..base+n-1, fanned out across a bounded worker
// pool. Each run builds its own System, so nothing is shared; results
// print in seed order regardless of completion order.
func multiRun(n, workers int, base int64, origin int, duration, warmup time.Duration, req rasc.Request, cmp rasc.Composer, mkOpts func(int64) []rasc.Option) {
	type outcome struct {
		hosts int
		stats rasc.DeliveryStats
		err   error
	}
	results := make([]outcome, n)
	fmt.Printf("running %d deployments (seeds %d..%d) via %s\n", n, base, base+int64(n)-1, cmp)
	err := experiment.ParallelFor(n, workers, func(i int) error {
		sys := rasc.New(mkOpts(base + int64(i))...)
		sys.Run(warmup)
		comp, err := sys.Submit(origin, req, cmp)
		if err != nil {
			results[i].err = err
			return nil // a rejected composition is a result, not a sweep failure
		}
		sys.Run(duration)
		results[i] = outcome{hosts: comp.NumHosts(), stats: comp.Stats()}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "runs: %v\n", err)
		os.Exit(1)
	}
	var agg rasc.DeliveryStats
	composed := 0
	for i, r := range results {
		if r.err != nil {
			fmt.Printf("  seed %-3d rejected: %v\n", base+int64(i), r.err)
			continue
		}
		composed++
		agg.Emitted += r.stats.Emitted
		agg.Received += r.stats.Received
		agg.Timely += r.stats.Timely
		agg.OutOfOrder += r.stats.OutOfOrder
		fmt.Printf("  seed %-3d hosts=%d delivered %.1f%% timely %.1f%% delay %v\n",
			base+int64(i), r.hosts, 100*r.stats.DeliveredFraction(),
			100*r.stats.TimelyFraction(), r.stats.MeanDelay.Round(time.Millisecond))
	}
	fmt.Printf("\naggregate: composed %d/%d, delivered %.1f%%, timely %.1f%%\n",
		composed, n, 100*agg.DeliveredFraction(), 100*agg.TimelyFraction())
}

// dumpTenants prints the admission gate's posture (a no-op without
// -admission / -max-tenants).
func dumpTenants(sys *rasc.System) {
	tenants, ok := sys.Tenants()
	if !ok {
		return
	}
	tt, _ := sys.TenantGateTotals()
	fmt.Printf("\nadmission gate: %d admitted, %d queued, %.0f of %.0f bps allocated, %d preemptions, %d rejections\n",
		tt.Admitted, tt.Queued, tt.AllocatedBps, tt.CapacityBps, tt.Preemptions, tt.Rejections)
	for _, t := range tenants {
		fmt.Printf("  %-12s %-11s %-8s demand %8.0f bps cap %8.0f bps\n",
			t.App, t.Priority, t.State, t.DemandBps, t.CapBps)
	}
}

// dumpFederation prints the origin's federation posture — its cluster,
// committed cross-cluster hand-offs and every cluster's boundary-link
// accounting (a no-op without -clusters).
func dumpFederation(sys *rasc.System, origin, clusters int) {
	refs, ok := sys.Handoffs(origin)
	if !ok {
		return
	}
	fmt.Printf("\nfederation: origin in cluster %s, %d cross-cluster hand-off(s)\n",
		sys.ClusterOf(origin), len(refs))
	for _, h := range refs {
		fmt.Printf("  %s substream %d -> %s (%.0f bps across the boundary)\n",
			h.App, h.Substream, h.RemoteCluster, h.DebitBps)
	}
	for k := 0; k < clusters; k++ {
		links, _ := sys.BoundaryLinks(k)
		for _, l := range links {
			fmt.Printf("  cluster c%d link %s: %.0f/%.0f bps reserved, %d credit(s)\n",
				k, l.Link, l.ReservedBps, l.CapacityBps, l.Credits)
		}
	}
}

// dumpTelemetry writes the final runtime telemetry snapshot alongside the
// result tables: to stdout for "-", to a file otherwise, nowhere when
// unset.
func dumpTelemetry(sys *rasc.System, dest string) {
	if dest == "" {
		return
	}
	snap := sys.TelemetrySnapshot()
	if dest == "-" {
		fmt.Printf("\nruntime telemetry:\n%s", snap)
		return
	}
	if err := os.WriteFile(dest, []byte(snap), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote telemetry snapshot to %s\n", dest)
}

// dumpDecisions writes the deployment's adaptation decision journal: as
// readable text to stdout for "-", as JSON to a file otherwise, nowhere
// when unset.
func dumpDecisions(sys *rasc.System, dest string) {
	if dest == "" {
		return
	}
	ds := sys.Decisions()
	if dest == "-" {
		fmt.Printf("\nadaptation decisions (%d):\n%s", len(ds), trace.FormatDecisions(ds))
		return
	}
	b, err := json.MarshalIndent(ds, "", "  ")
	if err == nil {
		err = os.WriteFile(dest, b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "decisions: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %d adaptation decisions to %s\n", len(ds), dest)
}
