package dht

import (
	"fmt"
	"testing"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/simnet"
)

func newDHTCluster(t *testing.T, n int, seed int64) (*simnet.Cluster, []*Store) {
	t.Helper()
	c := simnet.New(simnet.Options{N: n, Seed: seed})
	stores := make([]*Store, n)
	for i, node := range c.Nodes {
		stores[i] = New(node, c.Clock)
	}
	return c, stores
}

func TestPutGetSingleValue(t *testing.T) {
	c, stores := newDHTCluster(t, 12, 1)
	key := overlay.HashID("svc:transcode")
	stores[3].Put(key, []byte("host-3"))
	c.Sim.Run()
	var got [][]byte
	var gotErr error
	stores[7].Get(key, time.Second, func(vs [][]byte, err error) { got, gotErr = vs, err })
	c.Sim.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got) != 1 || string(got[0]) != "host-3" {
		t.Fatalf("got = %q", got)
	}
}

func TestPutMultiValueAccumulates(t *testing.T) {
	c, stores := newDHTCluster(t, 12, 2)
	key := overlay.HashID("svc:filter")
	for i := 0; i < 5; i++ {
		stores[i].Put(key, []byte(fmt.Sprintf("host-%d", i)))
	}
	c.Sim.Run()
	var got [][]byte
	stores[9].Get(key, time.Second, func(vs [][]byte, err error) { got = vs })
	c.Sim.Run()
	if len(got) != 5 {
		t.Fatalf("got %d values, want 5: %q", len(got), got)
	}
}

func TestPutIdempotent(t *testing.T) {
	c, stores := newDHTCluster(t, 8, 3)
	key := overlay.HashID("k")
	stores[0].Put(key, []byte("v"))
	stores[1].Put(key, []byte("v"))
	stores[0].Put(key, []byte("v"))
	c.Sim.Run()
	var got [][]byte
	stores[2].Get(key, time.Second, func(vs [][]byte, err error) { got = vs })
	c.Sim.Run()
	if len(got) != 1 {
		t.Fatalf("duplicate puts produced %d values", len(got))
	}
}

func TestRemove(t *testing.T) {
	c, stores := newDHTCluster(t, 8, 4)
	key := overlay.HashID("k")
	stores[0].Put(key, []byte("a"))
	stores[0].Put(key, []byte("b"))
	c.Sim.Run()
	stores[1].Remove(key, []byte("a"))
	c.Sim.Run()
	var got [][]byte
	stores[2].Get(key, time.Second, func(vs [][]byte, err error) { got = vs })
	c.Sim.Run()
	if len(got) != 1 || string(got[0]) != "b" {
		t.Fatalf("after remove got %q", got)
	}
}

func TestGetMissingKeyReturnsEmpty(t *testing.T) {
	c, stores := newDHTCluster(t, 8, 5)
	ran := false
	stores[0].Get(overlay.HashID("nothing-here"), time.Second, func(vs [][]byte, err error) {
		ran = true
		if err != nil {
			t.Errorf("err = %v", err)
		}
		if len(vs) != 0 {
			t.Errorf("vs = %q", vs)
		}
	})
	c.Sim.Run()
	if !ran {
		t.Fatal("callback never ran")
	}
}

func TestValuesStoredAtRoot(t *testing.T) {
	c, stores := newDHTCluster(t, 16, 6)
	key := overlay.HashID("where-am-i")
	stores[0].Put(key, []byte("v"))
	c.Sim.Run()
	root := c.Root(key)
	rootStore := stores[c.Index(root.ID())]
	if len(rootStore.LocalValues(key)) != 1 {
		t.Fatal("value not stored at the key's root")
	}
}

func TestReplication(t *testing.T) {
	c, stores := newDHTCluster(t, 16, 7)
	key := overlay.HashID("replicated")
	stores[2].Put(key, []byte("v"))
	c.Sim.Run()
	copies := 0
	for _, s := range stores {
		if len(s.LocalValues(key)) > 0 {
			copies++
		}
	}
	if copies < 2 {
		t.Fatalf("value exists on %d nodes, want root + replicas", copies)
	}
}

func TestConcurrentGetsCorrelateIndependently(t *testing.T) {
	c, stores := newDHTCluster(t, 8, 8)
	k1, k2 := overlay.HashID("k1"), overlay.HashID("k2")
	stores[0].Put(k1, []byte("one"))
	stores[0].Put(k2, []byte("two"))
	c.Sim.Run()
	var r1, r2 [][]byte
	stores[3].Get(k1, time.Second, func(vs [][]byte, err error) { r1 = vs })
	stores[3].Get(k2, time.Second, func(vs [][]byte, err error) { r2 = vs })
	c.Sim.Run()
	if len(r1) != 1 || string(r1[0]) != "one" {
		t.Fatalf("r1 = %q", r1)
	}
	if len(r2) != 1 || string(r2[0]) != "two" {
		t.Fatalf("r2 = %q", r2)
	}
}

func TestLocalKeysCount(t *testing.T) {
	c, stores := newDHTCluster(t, 4, 9)
	stores[0].Put(overlay.HashID("a"), []byte("x"))
	stores[0].Put(overlay.HashID("b"), []byte("y"))
	c.Sim.Run()
	total := 0
	for _, s := range stores {
		total += s.LocalKeys()
	}
	if total < 2 {
		t.Fatalf("total stored keys %d, want >= 2", total)
	}
}

func TestTTLExpiresStaleValues(t *testing.T) {
	c, stores := newDHTCluster(t, 8, 10)
	for _, s := range stores {
		s.TTL = 10 * time.Second
	}
	key := overlay.HashID("ephemeral")
	stores[0].Put(key, []byte("v"))
	c.Sim.Run()
	var got [][]byte
	stores[3].Get(key, time.Second, func(vs [][]byte, err error) { got = vs })
	c.Sim.Run()
	if len(got) != 1 {
		t.Fatalf("fresh value missing: %q", got)
	}
	// Past the TTL without a refresh, the value ages out.
	c.Sim.RunUntil(c.Sim.Now() + 11*time.Second)
	got = nil
	done := false
	stores[3].Get(key, time.Second, func(vs [][]byte, err error) { got, done = vs, true })
	for i := 0; i < 100 && !done; i++ {
		c.Sim.RunUntil(c.Sim.Now() + 100*time.Millisecond)
	}
	if len(got) != 0 {
		t.Fatalf("expired value still served: %q", got)
	}
}

func TestTTLRefreshedByRePut(t *testing.T) {
	c, stores := newDHTCluster(t, 8, 11)
	for _, s := range stores {
		s.TTL = 10 * time.Second
	}
	key := overlay.HashID("kept-alive")
	stores[0].Put(key, []byte("v"))
	c.Sim.Run()
	// Refresh at t+6s and t+12s: at t+15s the value must still live.
	c.Sim.RunUntil(c.Sim.Now() + 6*time.Second)
	stores[0].Put(key, []byte("v"))
	c.Sim.RunUntil(c.Sim.Now() + 6*time.Second)
	stores[0].Put(key, []byte("v"))
	c.Sim.RunUntil(c.Sim.Now() + 3*time.Second)
	var got [][]byte
	done := false
	stores[2].Get(key, time.Second, func(vs [][]byte, err error) { got, done = vs, true })
	for i := 0; i < 100 && !done; i++ {
		c.Sim.RunUntil(c.Sim.Now() + 100*time.Millisecond)
	}
	if len(got) != 1 {
		t.Fatalf("refreshed value expired: %q", got)
	}
}

func TestZeroTTLNeverExpires(t *testing.T) {
	c, stores := newDHTCluster(t, 8, 12)
	key := overlay.HashID("forever")
	stores[0].Put(key, []byte("v"))
	c.Sim.Run()
	c.Sim.RunUntil(c.Sim.Now() + time.Hour)
	var got [][]byte
	done := false
	stores[1].Get(key, time.Second, func(vs [][]byte, err error) { got, done = vs, true })
	for i := 0; i < 100 && !done; i++ {
		c.Sim.RunUntil(c.Sim.Now() + 100*time.Millisecond)
	}
	if len(got) != 1 {
		t.Fatalf("no-TTL value vanished: %q", got)
	}
}
