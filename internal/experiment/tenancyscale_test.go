package experiment

import (
	"math"
	"testing"
)

// TestRunTenancyScaleSmall runs a scaled-down scenario and checks its
// structural invariants: the storms actually preempt and promote, the
// permanently dead hosts' budgets come off exactly once, and the
// incremental allocator lands on the same final allocation as the
// full-recompute baseline over the identical operation sequence.
func TestRunTenancyScaleSmall(t *testing.T) {
	cfg := TenancyScaleConfig{
		Apps: 80, Hosts: 16, Seed: 7,
		ChurnBatches: 3, BatchSize: 6,
		StormRounds: 1, DeadHosts: 2, RecomputeOps: 8,
	}
	res, err := RunTenancyScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("admit p50=%v p95=%v max=%v recompute p50=%v preempted=%d promoted=%d notices=%d (%.1f/recompute)",
		res.AdmitP50, res.AdmitP95, res.AdmitMax, res.RecomputeP50,
		res.Preempted, res.Promoted, res.CapNotices, res.NotificationsPerRecompute)

	if res.TimedAdmits != cfg.Apps+cfg.ChurnBatches*cfg.BatchSize {
		t.Errorf("timed %d admissions, want %d", res.TimedAdmits, cfg.Apps+cfg.ChurnBatches*cfg.BatchSize)
	}
	if res.Totals.Admitted == 0 || res.Totals.Queued == 0 {
		t.Errorf("totals %+v: want both admitted and parked tenants at this contention", res.Totals)
	}
	// The storm must have preempted someone on the capacity collapse and
	// promoted someone on the rejoin.
	if res.Preempted == 0 {
		t.Error("host-death storm preempted nobody")
	}
	if res.Promoted == 0 {
		t.Error("host-rejoin storm promoted nobody")
	}
	// Two hosts died permanently (with duplicated verdicts): the final
	// budget is the per-host budget times the survivors, exactly once.
	perHost := res.CapacityBps / float64(cfg.Hosts)
	// The recompute perturbations alternate ±delta starting with +, so
	// an even count nets out to the post-death capacity.
	want := perHost * float64(cfg.Hosts-cfg.DeadHosts)
	if got := res.Totals.CapacityBps; math.Abs(got-want) > 1e-6*want {
		t.Errorf("final capacity %v, want %v (dead-host budgets released exactly once)", got, want)
	}
	if res.Stats.Recomputes == 0 || res.Stats.CapNotifications == 0 {
		t.Errorf("stats %+v: want recomputes and notifications", res.Stats)
	}

	// The identical operation sequence through the full-recompute
	// baseline must land on the same final allocation.
	base := cfg
	base.DisableIncremental = true
	bres, err := RunTenancyScale(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Admitted != bres.Totals.Admitted || res.Totals.Queued != bres.Totals.Queued {
		t.Fatalf("incremental totals %+v != baseline %+v", res.Totals, bres.Totals)
	}
	caps := make(map[string]float64, len(bres.Snapshot))
	for _, s := range bres.Snapshot {
		caps[s.App] = s.CapBps
	}
	for _, s := range res.Snapshot {
		want, ok := caps[s.App]
		if !ok {
			t.Errorf("%s present incrementally, absent from the baseline", s.App)
			continue
		}
		if diff := math.Abs(s.CapBps - want); diff > 1e-6*math.Max(1, want) {
			t.Errorf("%s cap %v incremental vs %v baseline", s.App, s.CapBps, want)
		}
	}
}

// TestRunTenancyScaleDeadband pins that a configured deadband suppresses
// fan-out: the same scenario with a 1% band delivers fewer cap
// notifications per recompute and counts the suppressed updates.
func TestRunTenancyScaleDeadband(t *testing.T) {
	cfg := TenancyScaleConfig{
		Apps: 80, Hosts: 16, Seed: 7,
		ChurnBatches: 3, BatchSize: 6,
		StormRounds: 1, DeadHosts: 2, RecomputeOps: 8,
	}
	plain, err := RunTenancyScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FairShareDeadband = 0.01
	banded, err := RunTenancyScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if banded.Stats.CapNotifications >= plain.Stats.CapNotifications {
		t.Errorf("deadband did not reduce notifications: %d banded vs %d plain",
			banded.Stats.CapNotifications, plain.Stats.CapNotifications)
	}
	if banded.Stats.CoalescedCapEvents == 0 {
		t.Error("deadband suppressed nothing despite fewer notifications")
	}
}
