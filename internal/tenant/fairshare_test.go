package tenant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFairSharesInvariants property-tests the weighted max-min invariants
// over randomized demand sets (run under -race in CI):
//
//  1. no tenant is allocated more than its demand;
//  2. work conservation: either every tenant is satisfied or the whole
//     capacity is allocated;
//  3. all unsatisfied tenants share the same normalized allocation
//     (share/weight — the final water level).
func TestFairSharesInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		demands := make([]Demand, n)
		var total float64
		for i := range demands {
			demands[i] = Demand{
				App:    string(rune('a' + i)),
				Bps:    float64(1+rng.Intn(1000)) * 100,
				Weight: []float64{1, 2, 4}[rng.Intn(3)],
			}
			total += demands[i].Bps
		}
		// Capacity from deep contention to surplus.
		capacity := total * (0.1 + 1.4*rng.Float64())
		shares := FairShares(demands, capacity)

		var allocated float64
		satisfiedAll := true
		level := -1.0
		for i, d := range demands {
			s := shares[i]
			if s < 0 || s > d.Bps+1e-6 {
				t.Logf("seed %d: share %g outside [0,%g]", seed, s, d.Bps)
				return false
			}
			allocated += s
			if s < d.Bps-1e-6 {
				satisfiedAll = false
				norm := s / d.Weight
				if level < 0 {
					level = norm
				} else if math.Abs(norm-level) > 1e-6*math.Max(1, level) {
					t.Logf("seed %d: unsatisfied tenants at different levels %g vs %g", seed, norm, level)
					return false
				}
			}
		}
		if !satisfiedAll && math.Abs(allocated-capacity) > 1e-6*math.Max(1, capacity) {
			t.Logf("seed %d: not work-conserving: allocated %g of %g", seed, allocated, capacity)
			return false
		}
		if satisfiedAll && allocated > capacity+1e-6 {
			t.Logf("seed %d: over-allocated %g of %g", seed, allocated, capacity)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFairSharesDeterministic(t *testing.T) {
	demands := []Demand{
		{App: "a", Bps: 1000, Weight: 1},
		{App: "b", Bps: 1000, Weight: 1},
		{App: "c", Bps: 4000, Weight: 2},
	}
	first := FairShares(demands, 3000)
	for i := 0; i < 50; i++ {
		again := FairShares(demands, 3000)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d: share[%d] %v != %v", i, j, again[j], first[j])
			}
		}
	}
}

func TestFairSharesWeights(t *testing.T) {
	// Two unsatisfied tenants, weights 4 and 1: shares split 4:1.
	demands := []Demand{
		{App: "critical", Bps: 10000, Weight: 4},
		{App: "best-effort", Bps: 10000, Weight: 1},
	}
	shares := FairShares(demands, 5000)
	if math.Abs(shares[0]-4000) > 1e-6 || math.Abs(shares[1]-1000) > 1e-6 {
		t.Fatalf("weighted split got %v, want [4000 1000]", shares)
	}
}

func TestFairSharesEdgeCases(t *testing.T) {
	if got := FairShares(nil, 1000); len(got) != 0 {
		t.Fatalf("nil demands: %v", got)
	}
	if got := FairShares([]Demand{{App: "a", Bps: 100, Weight: 1}}, 0); got[0] != 0 {
		t.Fatalf("zero capacity: %v", got)
	}
	got := FairShares([]Demand{{App: "a", Bps: 0, Weight: 1}, {App: "b", Bps: 500, Weight: 1}}, 1000)
	if got[0] != 0 || got[1] != 500 {
		t.Fatalf("zero-demand tenant: %v", got)
	}
	// Surplus capacity satisfies everyone exactly.
	got = FairShares([]Demand{{App: "a", Bps: 300, Weight: 1}, {App: "b", Bps: 200, Weight: 4}}, 10000)
	if got[0] != 300 || got[1] != 200 {
		t.Fatalf("surplus: %v", got)
	}
}
