// Package tenant is the multi-tenancy layer between the submission entry
// points and the composers: a per-cluster admission gate with priority
// classes, weighted max-min fair-share rate caps (water-filling), an
// admission queue, and preemption of the lowest-priority tenants under
// contention. It exists so that hundreds of concurrent applications
// contend through an explicit allocation policy instead of silently
// degrading each other by first-come-first-served capacity decrement.
package tenant

import (
	"math"
	"sort"
)

// Demand is one tenant's input to the fairness allocator.
type Demand struct {
	// App identifies the tenant (ties in the water level are broken by
	// App so allocations are deterministic).
	App string
	// Bps is the tenant's requested aggregate rate in bits/sec.
	Bps float64
	// Weight is the tenant's fairness weight (priority class weight);
	// non-positive weights are treated as the minimum weight 1.
	Weight float64
}

// FairShares computes the weighted max-min fair allocation of capacity
// across the demands by water-filling: the water level rises uniformly
// per unit of weight; a tenant whose demand is met leaves the pool and
// its surplus is redistributed among the still-unsatisfied tenants. The
// result, indexed like demands, satisfies the classic invariants:
//
//   - no tenant is allocated more than its demand;
//   - the allocation is work-conserving: either every tenant is
//     satisfied or the full capacity is allocated;
//   - all unsatisfied tenants share the same normalized allocation
//     share/weight (the final water level).
//
// The computation is deterministic: equal inputs give bit-equal outputs.
func FairShares(demands []Demand, capacityBps float64) []float64 {
	return FairSharesInto(make([]float64, len(demands)), nil, demands, capacityBps)
}

// FairShareScratch holds the sort buffers FairSharesInto reuses across
// calls so a full water-fill recompute allocates nothing in steady state.
// The zero value is ready to use; a scratch must not be shared between
// concurrent calls.
type FairShareScratch struct {
	sorter fsSorter
}

// fsEntry is one positive demand staged for the water-fill sweep.
type fsEntry struct {
	idx    int
	level  float64 // demand/weight: the water level that satisfies it
	weight float64
}

// fsSorter sorts entries by (level, App) — pointer receiver so the
// sort.Interface conversion does not allocate.
type fsSorter struct {
	entries []fsEntry
	demands []Demand
}

func (s *fsSorter) Len() int      { return len(s.entries) }
func (s *fsSorter) Swap(i, j int) { s.entries[i], s.entries[j] = s.entries[j], s.entries[i] }
func (s *fsSorter) Less(i, j int) bool {
	if s.entries[i].level != s.entries[j].level {
		return s.entries[i].level < s.entries[j].level
	}
	return s.demands[s.entries[i].idx].App < s.demands[s.entries[j].idx].App
}

// FairSharesInto is FairShares writing into caller-owned buffers: dst is
// grown as needed and returned re-sliced to len(demands); scratch (nil
// for a transient one) keeps the sort buffers. Results are bit-identical
// to FairShares.
func FairSharesInto(dst []float64, scratch *FairShareScratch, demands []Demand, capacityBps float64) []float64 {
	if cap(dst) < len(demands) {
		dst = make([]float64, len(demands))
	}
	dst = dst[:len(demands)]
	for i := range dst {
		dst[i] = 0
	}
	if capacityBps <= 0 || len(demands) == 0 {
		return dst
	}
	if scratch == nil {
		scratch = &FairShareScratch{}
	}
	s := &scratch.sorter
	s.demands = demands
	if cap(s.entries) < len(demands) {
		s.entries = make([]fsEntry, 0, len(demands))
	}
	s.entries = s.entries[:0]
	var weightSum float64
	for i, d := range demands {
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		if d.Bps <= 0 {
			continue // zero demand: zero share, not in the pool
		}
		s.entries = append(s.entries, fsEntry{idx: i, level: d.Bps / w, weight: w})
		weightSum += w
	}
	sort.Sort(s)
	remaining := capacityBps
	for k, e := range s.entries {
		if weightSum <= 0 {
			break
		}
		level := remaining / weightSum
		if level >= e.level {
			// The water level reaches this tenant's demand: satisfy it
			// exactly and redistribute the surplus.
			dst[e.idx] = demands[e.idx].Bps
			remaining -= demands[e.idx].Bps
			weightSum -= e.weight
			continue
		}
		// Every remaining tenant (this one and all later, which saturate
		// at even higher levels) is unsatisfied: they split the remaining
		// capacity at the final water level.
		for _, u := range s.entries[k:] {
			dst[u.idx] = level * u.weight
		}
		break
	}
	s.demands = nil // do not retain the caller's slice past the call
	// Guard against float drift leaving a share microscopically above
	// demand.
	for i, d := range demands {
		if dst[i] > d.Bps {
			dst[i] = d.Bps
		}
		if dst[i] < 0 || math.IsNaN(dst[i]) {
			dst[i] = 0
		}
	}
	return dst
}
