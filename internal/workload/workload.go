// Package workload generates the experimental workload of §4.1: random
// service requests of 2–5 services drawn from the catalog, with required
// rates between 50 and 200 Kbps, against a 32-node deployment offering 10
// unique services at 5 per node.
package workload

import (
	"fmt"
	"math/rand"

	"rasc.dev/rasc/internal/spec"
)

// Config parameterizes a request generator.
type Config struct {
	// Services is the pool of service names to draw from.
	Services []string
	// MinServices and MaxServices bound the number of services per
	// request (defaults 2 and 5, §4.1).
	MinServices, MaxServices int
	// RateUnits is the fixed per-request rate in data units/sec,
	// divided across the request's substreams; if zero, rates are
	// drawn from RateChoices.
	RateUnits int
	// RateChoices are the candidate per-request rates (units/sec)
	// drawn uniformly when RateUnits is zero. Defaults to
	// {5,10,15,20}, i.e. 50–200 Kbps at the default unit size.
	RateChoices []int
	// UnitBytes is the data unit size (default 1250 bytes = 10 kbit, so
	// one unit/sec = 10 Kbps).
	UnitBytes int
	// MaxSubstreams bounds the substreams per request (default 2).
	// Services are partitioned across substreams.
	MaxSubstreams int
	// Priorities is the tenancy-class mix of generated requests. The
	// zero value leaves every request at the default Standard class.
	Priorities PriorityMix
}

// PriorityMix weights the tenancy classes of generated requests. Each
// request draws its class proportionally to the (non-negative) weights;
// an all-zero mix generates only Standard requests.
type PriorityMix struct {
	Critical   float64
	Standard   float64
	BestEffort float64
}

func (m PriorityMix) total() float64 { return m.Critical + m.Standard + m.BestEffort }

// draw picks a class from the mix using one uniform sample in [0,1).
func (m PriorityMix) draw(u float64) spec.Priority {
	t := m.total()
	if t <= 0 {
		return spec.Standard
	}
	u *= t
	if u < m.Critical {
		return spec.Critical
	}
	if u < m.Critical+m.Standard {
		return spec.Standard
	}
	return spec.BestEffort
}

func (c *Config) defaults() {
	if c.MinServices == 0 {
		c.MinServices = 2
	}
	if c.MaxServices == 0 {
		c.MaxServices = 5
	}
	if c.UnitBytes == 0 {
		c.UnitBytes = 1250
	}
	if c.MaxSubstreams == 0 {
		c.MaxSubstreams = 2
	}
	if c.RateUnits == 0 && len(c.RateChoices) == 0 {
		c.RateChoices = []int{5, 10, 15, 20}
	}
}

// Generator produces a deterministic stream of random requests.
type Generator struct {
	cfg Config
	rng *rand.Rand
	n   int
}

// NewGenerator creates a generator with its own seeded random source.
func NewGenerator(cfg Config, seed int64) *Generator {
	cfg.defaults()
	if len(cfg.Services) == 0 {
		panic("workload: Config.Services is empty")
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Next generates the next request.
func (g *Generator) Next() spec.Request {
	g.n++
	cfg := g.cfg
	count := cfg.MinServices
	if cfg.MaxServices > cfg.MinServices {
		count += g.rng.Intn(cfg.MaxServices - cfg.MinServices + 1)
	}
	if count > len(cfg.Services) {
		count = len(cfg.Services)
	}
	// Draw distinct services.
	perm := g.rng.Perm(len(cfg.Services))[:count]
	chosen := make([]string, count)
	for i, k := range perm {
		chosen[i] = cfg.Services[k]
	}
	// Partition into substreams.
	nSub := 1
	if cfg.MaxSubstreams > 1 && count >= 2 {
		nSub = 1 + g.rng.Intn(cfg.MaxSubstreams)
		if nSub > count {
			nSub = count
		}
	}
	subs := make([]spec.Substream, nSub)
	for i, svc := range chosen {
		subs[i%nSub].Services = append(subs[i%nSub].Services, svc)
	}
	// The request's total rate is split across its substreams (the
	// paper's 50–200 Kbps figures are per request).
	rate := cfg.RateUnits
	if rate == 0 {
		rate = cfg.RateChoices[g.rng.Intn(len(cfg.RateChoices))]
	}
	base, rem := rate/nSub, rate%nSub
	for i := range subs {
		subs[i].Rate = base
		if i < rem {
			subs[i].Rate++
		}
		if subs[i].Rate == 0 {
			subs[i].Rate = 1
		}
	}
	return spec.Request{
		ID:         fmt.Sprintf("req-%03d", g.n),
		UnitBytes:  cfg.UnitBytes,
		Substreams: subs,
		Priority:   cfg.Priorities.draw(g.rng.Float64()),
	}
}

// Batch generates n requests.
func (g *Generator) Batch(n int) []spec.Request {
	out := make([]spec.Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// FlashCrowd generates a tenant burst: n single-substream requests all
// chaining through the one hot service — the 10–100x fan-in on one
// service that admission control must absorb without degrading running
// applications. Rates draw from the generator's usual distribution; IDs
// continue the generator's numbering with a "flash-" prefix so burst
// requests are recognizable in journals and metrics.
func (g *Generator) FlashCrowd(n int, service string, pri spec.Priority) []spec.Request {
	cfg := g.cfg
	out := make([]spec.Request, n)
	for i := range out {
		g.n++
		rate := cfg.RateUnits
		if rate == 0 {
			rate = cfg.RateChoices[g.rng.Intn(len(cfg.RateChoices))]
		}
		out[i] = spec.Request{
			ID:         fmt.Sprintf("flash-%03d", g.n),
			UnitBytes:  cfg.UnitBytes,
			Substreams: []spec.Substream{{Services: []string{service}, Rate: rate}},
			Priority:   pri,
		}
	}
	return out
}
