package tenant

import (
	"sync"
	"testing"
	"time"

	"rasc.dev/rasc/internal/spec"
)

// stepClock is a manually fired clock.Clock for the coalescing tests:
// timers collect until fire() runs them (outside any caller lock, like
// the real and simulated clocks).
type stepClock struct {
	mu     sync.Mutex
	now    time.Duration
	timers []func()
}

func (c *stepClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stepClock) After(d time.Duration, fn func()) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timers = append(c.timers, fn)
	return func() {}
}

// fire runs every pending timer once.
func (c *stepClock) fire() {
	c.mu.Lock()
	pending := c.timers
	c.timers = nil
	c.mu.Unlock()
	for _, fn := range pending {
		fn()
	}
}

func (c *stepClock) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// TestGateDeadbandSuppressesSmallMoves pins the fair-share deadband: cap
// moves within the relative band are suppressed (and counted), a move
// beyond it sweeps.
func TestGateDeadbandSuppressesSmallMoves(t *testing.T) {
	rec := newRecorder()
	g := NewGate(Config{CapacityBps: 1000, MinShareFraction: 0.1, FairShareDeadband: 0.2})
	g.Admit("a", spec.BestEffort, 1000, rec)
	g.Admit("b", spec.BestEffort, 1000, rec)
	g.Admit("c", spec.BestEffort, 1000, rec)
	rec.mu.Lock()
	rec.caps = map[string]float64{} // discard admission-time churn
	rec.mu.Unlock()
	base := g.Stats()

	// +5% capacity: the water level moves 5% < 20% — no notifications,
	// three suppressed updates counted, caps unchanged.
	g.SetCapacity(1050)
	rec.mu.Lock()
	notified := len(rec.caps)
	rec.mu.Unlock()
	if notified != 0 {
		t.Fatalf("deadband leaked %d notifications", notified)
	}
	st := g.Stats()
	if got := st.CoalescedCapEvents - base.CoalescedCapEvents; got != 3 {
		t.Fatalf("suppressed events = %d, want 3", got)
	}
	if cap, _ := g.CapBps("a"); cap < 333 || cap > 334 {
		t.Fatalf("a's cap %v moved inside the deadband", cap)
	}

	// Doubling the capacity is far outside the band: everyone is swept
	// to the new exact share.
	g.SetCapacity(2100)
	rec.mu.Lock()
	aCap, ok := rec.caps["a"]
	rec.mu.Unlock()
	if !ok {
		t.Fatal("no notification after a beyond-deadband move")
	}
	if aCap != 700 {
		t.Fatalf("announced cap %v, want 700", aCap)
	}
	if cap, _ := g.CapBps("a"); cap != 700 {
		t.Fatalf("held cap %v, want 700", cap)
	}
}

// TestGateCoalescingCollapsesBursts pins the coalescing window: a burst
// of recomputes inside one window produces one deferred sweep, and each
// tenant at most one notification carrying the final cap.
func TestGateCoalescingCollapsesBursts(t *testing.T) {
	clk := &stepClock{}
	rec := newRecorder()
	g := NewGate(Config{
		CapacityBps:       1200,
		MinShareFraction:  0.1,
		CapCoalesceWindow: 50 * time.Millisecond,
		Clock:             clk,
	})
	g.Admit("a", spec.BestEffort, 1200, rec)

	// Burst: three more joins inside the window. Each join's own cap
	// arrives synchronously in its Decision; a's fan-out is deferred.
	g.Admit("b", spec.BestEffort, 1200, rec)
	g.Admit("c", spec.BestEffort, 1200, rec)
	g.Admit("d", spec.BestEffort, 1200, rec)
	rec.mu.Lock()
	preFire := len(rec.caps)
	rec.mu.Unlock()
	if preFire != 0 {
		t.Fatalf("%d notifications delivered before the window closed", preFire)
	}
	if clk.pending() != 1 {
		t.Fatalf("%d sweeps scheduled, want 1 (burst collapsed)", clk.pending())
	}
	st := g.Stats()
	if st.CoalescedCapEvents < 2 {
		t.Fatalf("coalesced events = %d, want ≥ 2 (two merged recomputes)", st.CoalescedCapEvents)
	}

	// The deferred sweep delivers one notification per moved tenant with
	// the final (not any intermediate) cap.
	clk.fire()
	rec.mu.Lock()
	caps := make(map[string]float64, len(rec.caps))
	for app, c := range rec.caps {
		caps[app] = c
	}
	rec.mu.Unlock()
	if caps["a"] != 300 {
		t.Fatalf("a's coalesced cap %v, want 300 (final share)", caps["a"])
	}
	for app, c := range caps {
		if held, _ := g.CapBps(app); held != c {
			t.Fatalf("%s announced %v but holds %v", app, c, held)
		}
	}
	if clk.pending() != 0 {
		t.Fatalf("sweep rescheduled itself: %d pending", clk.pending())
	}

	// The next structural change opens a fresh window.
	g.Release("d")
	if clk.pending() != 1 {
		t.Fatalf("release did not schedule a new sweep: %d pending", clk.pending())
	}
	clk.fire()
	if cap, _ := g.CapBps("a"); cap != 400 {
		t.Fatalf("a's cap %v after release sweep, want 400", cap)
	}
}

// TestGateCoalescingNeverDefersPreemption pins the carve-out: preemption
// and promotion notices are delivered synchronously even inside a
// coalescing window — only cap refreshes wait.
func TestGateCoalescingNeverDefersPreemption(t *testing.T) {
	clk := &stepClock{}
	rec := newRecorder()
	g := NewGate(Config{
		CapacityBps:       10000,
		MinShareFraction:  0.5,
		CapCoalesceWindow: 50 * time.Millisecond,
		Clock:             clk,
	})
	g.Admit("be", spec.BestEffort, 9000, rec)
	g.Admit("crit", spec.Critical, 16000, rec)
	rec.mu.Lock()
	preempted := append([]string(nil), rec.preempted...)
	rec.mu.Unlock()
	if len(preempted) != 1 || preempted[0] != "be" {
		t.Fatalf("preempted %v before window close, want [be]", preempted)
	}
	g.Release("crit")
	rec.mu.Lock()
	promoted := append([]string(nil), rec.promoted...)
	rec.mu.Unlock()
	if len(promoted) != 1 || promoted[0] != "be" {
		t.Fatalf("promoted %v before window close, want [be]", promoted)
	}
}
