package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// maxFrameSize bounds a single wire frame (guards against corrupt length
// prefixes).
const maxFrameSize = 16 << 20

// The on-the-wire frame is a 4-byte big-endian length followed by the
// binary frame body defined in wire.go.

// TCPConfig tunes a TCP endpoint's connection pool. The zero value
// selects the defaults noted on each field.
type TCPConfig struct {
	// WriteTimeout bounds each frame write so one stalled peer cannot
	// wedge the sender forever; an expired write drops the pooled
	// connection (default 10s, negative disables).
	WriteTimeout time.Duration
	// IdleTimeout is how long an unused pooled outbound connection
	// survives before the reaper closes it; the next Send re-dials on
	// demand (default 2m, negative disables reaping).
	IdleTimeout time.Duration
}

func (c *TCPConfig) defaults() {
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
}

// TCPEndpoint is a transport endpoint over real TCP sockets. Outbound
// connections are pooled per destination, re-dialed on demand, and reaped
// after IdleTimeout of disuse; inbound frames are delivered from
// per-connection reader goroutines, so the handler must be safe for
// concurrent invocation (the live runtime serializes onto an actor loop).
type TCPEndpoint struct {
	listener net.Listener
	addr     Addr
	cfg      TCPConfig

	mu          sync.Mutex
	conns       map[Addr]net.Conn
	lastUse     map[Addr]time.Time
	allConns    map[net.Conn]bool
	handler     Handler
	dropHandler Handler
	closed      bool
	done        chan struct{}
	wg          sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCP binds a TCP endpoint on listenAddr ("host:port"; port 0 picks a
// free port) with default pool tuning. The returned endpoint's Addr is
// the actual bound address.
func NewTCP(listenAddr string) (*TCPEndpoint, error) {
	return NewTCPWithConfig(listenAddr, TCPConfig{})
}

// NewTCPWithConfig binds a TCP endpoint with explicit pool tuning.
func NewTCPWithConfig(listenAddr string, cfg TCPConfig) (*TCPEndpoint, error) {
	cfg.defaults()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	e := &TCPEndpoint{
		listener: ln,
		addr:     Addr(ln.Addr().String()),
		cfg:      cfg,
		conns:    make(map[Addr]net.Conn),
		lastUse:  make(map[Addr]time.Time),
		allConns: make(map[net.Conn]bool),
		done:     make(chan struct{}),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	if cfg.IdleTimeout > 0 {
		e.wg.Add(1)
		go e.reapLoop()
	}
	return e, nil
}

// Addr returns the endpoint's bound address.
func (e *TCPEndpoint) Addr() Addr { return e.addr }

// SetHandler installs the inbound message handler.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// SetDropHandler is a no-op: TCP delivers reliably, and kernel-level
// datagram drops are not observable on this transport.
func (e *TCPEndpoint) SetDropHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dropHandler = h
}

// Send transmits msg to the destination, dialing and caching a connection
// on first use.
func (e *TCPEndpoint) Send(to Addr, msg Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	conn, ok := e.conns[to]
	e.mu.Unlock()
	if !ok {
		c, err := net.Dial("tcp", string(to))
		if err != nil {
			telTCPConnErr.Inc()
			return fmt.Errorf("%w: %s: %v", ErrUnknownAddr, to, err)
		}
		e.mu.Lock()
		if existing, ok := e.conns[to]; ok {
			e.mu.Unlock()
			c.Close()
			conn = existing
		} else {
			e.conns[to] = c
			e.allConns[c] = true
			e.mu.Unlock()
			conn = c
			// Frames may also arrive on this outbound connection.
			e.wg.Add(1)
			go e.readLoop(c)
		}
	}
	// Build the length prefix and frame body in one buffer so the frame
	// goes out in a single write.
	frame := make([]byte, 4, 4+2+len(e.addr)+msg.WireSize())
	frame = appendTCPFrame(frame, e.addr, msg)
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.lastUse[to] = time.Now()
	if e.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
	}
	if _, err := conn.Write(frame); err != nil {
		e.dropConnLocked(to, conn)
		return err
	}
	telTCPOut.Inc()
	telTCPOutBytes.Add(uint64(len(frame)))
	return nil
}

func (e *TCPEndpoint) dropConnLocked(to Addr, conn net.Conn) {
	if e.conns[to] == conn {
		delete(e.conns, to)
		delete(e.lastUse, to)
	}
	conn.Close()
}

// DropConn closes the pooled outbound connection to the destination (if
// any); the next Send re-dials on demand. The Resilient wrapper calls it
// when it reaps an idle peer.
func (e *TCPEndpoint) DropConn(to Addr) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if conn, ok := e.conns[to]; ok {
		e.dropConnLocked(to, conn)
	}
}

// reapLoop closes pooled outbound connections unused for IdleTimeout.
func (e *TCPEndpoint) reapLoop() {
	defer e.wg.Done()
	interval := e.cfg.IdleTimeout / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			cutoff := time.Now().Add(-e.cfg.IdleTimeout)
			e.mu.Lock()
			for to, conn := range e.conns {
				if e.lastUse[to].Before(cutoff) {
					e.dropConnLocked(to, conn)
				}
			}
			e.mu.Unlock()
		case <-e.done:
			return
		}
	}
}

// Close shuts the listener and every connection down and waits for reader
// goroutines to exit.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	err := e.listener.Close()
	for c := range e.allConns {
		c.Close()
	}
	e.conns = map[Addr]net.Conn{}
	e.lastUse = map[Addr]time.Time{}
	e.allConns = map[net.Conn]bool{}
	e.mu.Unlock()
	e.wg.Wait()
	return err
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.allConns[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.allConns, conn)
		e.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	for {
		var prefix [4]byte
		if _, err := readFull(r, prefix[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(prefix[:])
		if n > maxFrameSize {
			conn.Close()
			return
		}
		body := make([]byte, n)
		if _, err := readFull(r, body); err != nil {
			return
		}
		from, msg, err := readTCPFrame(body)
		if err != nil {
			continue
		}
		telTCPIn.Inc()
		telTCPInBytes.Add(uint64(len(prefix) + len(body)))
		e.mu.Lock()
		h := e.handler
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(from, msg)
		}
	}
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
