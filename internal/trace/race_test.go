package trace

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentAppend is the -race regression test for Buffer: live nodes
// append from transport reader goroutines while admin handlers read.
func TestConcurrentAppend(t *testing.T) {
	const workers, perWorker = 8, 1000
	b := NewBuffer(256)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b.Append(Event{
					At:   time.Duration(i) * time.Millisecond,
					Kind: KindArrive,
					Req:  "req",
					Seq:  int64(w*perWorker + i),
				})
			}
		}(w)
	}
	// Concurrent readers must not race with appenders.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = b.Events()
				_ = b.Len()
				_ = b.DropsByCause()
			}
		}()
	}
	wg.Wait()
	if got := b.Total(); got != workers*perWorker {
		t.Fatalf("Total = %d, want %d (lost appends)", got, workers*perWorker)
	}
	if got := b.Len(); got != 256 {
		t.Fatalf("Len = %d, want capacity 256", got)
	}
}
