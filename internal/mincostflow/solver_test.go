package mincostflow

import (
	"math/rand"
	"testing"
)

// randomLayeredGraph builds a composition-shaped layered graph: src →
// stage₀ … stage_{q-1} → dst with capacity-bounded internal arcs, like
// core.MinCost produces. Returns the graph, endpoints and the internal
// arc IDs whose flows the assertions compare.
func randomLayeredGraph(rng *rand.Rand) (*Graph, int, int, []ArcID) {
	q := 1 + rng.Intn(4)
	width := 1 + rng.Intn(6)
	g := NewGraph(2)
	src, dst := 0, 1
	srcOut := g.AddNode()
	dstIn := g.AddNode()
	g.AddArc(src, srcOut, int64(10+rng.Intn(200)), 0)
	g.AddArc(dstIn, dst, int64(10+rng.Intn(200)), 0)
	var internals []ArcID
	prevOuts := []int{srcOut}
	for j := 0; j < q; j++ {
		var outs []int
		for k := 0; k < width; k++ {
			in, out := g.AddNode(), g.AddNode()
			id := g.AddArc(in, out, int64(rng.Intn(60)), int64(rng.Intn(1_000_000)))
			internals = append(internals, id)
			for _, p := range prevOuts {
				g.AddArc(p, in, 1<<40, 0)
			}
			outs = append(outs, out)
		}
		prevOuts = outs
	}
	for _, p := range prevOuts {
		g.AddArc(p, dstIn, 1<<40, 0)
	}
	return g, src, dst, internals
}

// TestSolverPooledMatchesFresh is the solver-reuse property test: a pooled
// Solver run back-to-back over a stream of randomized graphs must return
// flows and costs identical to a fresh solver solving the same instance.
// Run under -race in CI.
func TestSolverPooledMatchesFresh(t *testing.T) {
	pooled := AcquireSolver()
	defer pooled.Release()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		g, src, dst, internals := randomLayeredGraph(rng)
		want := int64(1 + rng.Intn(150))

		gotRes, err := pooled.MinCostFlow(g, src, dst, want)
		if err != nil {
			t.Fatalf("trial %d: pooled solve: %v", trial, err)
		}
		gotFlows := make([]int64, len(internals))
		for i, id := range internals {
			gotFlows[i] = g.Flow(id)
		}

		g.ResetFlows()
		var fresh Solver
		wantRes, err := fresh.MinCostFlow(g, src, dst, want)
		if err != nil {
			t.Fatalf("trial %d: fresh solve: %v", trial, err)
		}
		if gotRes != wantRes {
			t.Fatalf("trial %d: pooled %+v != fresh %+v", trial, gotRes, wantRes)
		}
		for i := range internals {
			if got := g.Flow(internals[i]); got != gotFlows[i] {
				t.Fatalf("trial %d arc %d: pooled flow %d != fresh flow %d",
					trial, i, gotFlows[i], got)
			}
		}
	}
	if !pooled.Reused() {
		t.Fatal("pooled solver never reported reuse")
	}
}

// TestSolverScalingPooledMatchesFresh extends the reuse property to the
// cost-scaling path: same instance, pooled vs fresh scratch, identical
// result and per-arc flows.
func TestSolverScalingPooledMatchesFresh(t *testing.T) {
	pooled := AcquireSolver()
	defer pooled.Release()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		g, src, dst, internals := randomLayeredGraph(rng)
		want := int64(1 + rng.Intn(100))

		gotRes, err := pooled.MinCostFlowScaling(g, src, dst, want)
		if err != nil {
			t.Fatalf("trial %d: pooled scaling: %v", trial, err)
		}
		gotFlows := make([]int64, len(internals))
		for i, id := range internals {
			gotFlows[i] = g.Flow(id)
		}

		g.ResetFlows()
		var fresh Solver
		wantRes, err := fresh.MinCostFlowScaling(g, src, dst, want)
		if err != nil {
			t.Fatalf("trial %d: fresh scaling: %v", trial, err)
		}
		if gotRes != wantRes {
			t.Fatalf("trial %d: pooled %+v != fresh %+v", trial, gotRes, wantRes)
		}
		for i := range internals {
			if got := g.Flow(internals[i]); got != gotFlows[i] {
				t.Fatalf("trial %d arc %d: pooled flow %d != fresh flow %d",
					trial, i, gotFlows[i], got)
			}
		}
	}
}

// TestGraphResetReusesArena pins the allocation contract: rebuilding and
// re-solving the same-shaped graph through Reset plus a held Solver must
// not allocate once warm.
func TestGraphResetReusesArena(t *testing.T) {
	sv := AcquireSolver()
	defer sv.Release()
	g := NewGraph(2)
	build := func() {
		g.Reset(2)
		srcOut, dstIn := g.AddNode(), g.AddNode()
		g.AddArc(0, srcOut, 100, 0)
		g.AddArc(dstIn, 1, 100, 0)
		for k := 0; k < 8; k++ {
			in, out := g.AddNode(), g.AddNode()
			g.AddArc(in, out, 20, int64(k*1000))
			g.AddArc(srcOut, in, 1<<40, 0)
			g.AddArc(out, dstIn, 1<<40, 0)
		}
	}
	// Warm the arenas.
	build()
	if _, err := sv.MinCostFlow(g, 0, 1, 100); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		build()
		if _, err := sv.MinCostFlow(g, 0, 1, 100); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("warm rebuild+solve allocates %.1f times per run, want 0", avg)
	}
}
